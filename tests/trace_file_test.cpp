//===- tests/trace_file_test.cpp - Out-of-core trace format ------------------===//
//
// The on-disk trace contract, pinned from the bottom up: the LZ block
// codec round-trips and rejects malformed streams; streaming a recording
// to disk produces byte-for-byte the file save() writes; the footer index
// describes exactly the blocks; corruption of any byte is detected at
// open(); and -- the fifth equivalence contract -- a mapped trace replays
// bit-identically to the in-RAM oracle under every allocator kind, jobs
// count, and ReplayMode, from a raw Runtime up through runPlan.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceFile.h"

#include "eval/Evaluation.h"
#include "eval/Experiment.h"
#include "mem/BoundaryTagAllocator.h"
#include "mem/SizeClassAllocator.h"
#include "support/Executor.h"
#include "support/Lz.h"
#include "trace/EventTrace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <random>
#include <tuple>

#include <unistd.h>

using namespace halo;

namespace {

/// A temp file path, unlinked on destruction.
class TempFile {
public:
  TempFile() {
    char Template[] = "/tmp/halo_trace_file_test.XXXXXX";
    int Fd = mkstemp(Template);
    EXPECT_GE(Fd, 0);
    close(Fd);
    Path = Template;
  }
  ~TempFile() { unlink(Path.c_str()); }
  const std::string &path() const { return Path; }

private:
  std::string Path;
};

/// Records one deterministic workload run into an in-RAM trace.
EventTrace recordTrace(const std::string &Benchmark, Scale S, uint64_t Seed) {
  auto W = createWorkload(Benchmark);
  Program P;
  W->build(P);
  EventTrace Trace;
  RecordingArena Arena;
  Runtime RT(P, Arena);
  TraceRecorder Recorder(Trace, Arena);
  RT.addObserver(&Recorder);
  W->run(RT, S, Seed);
  return Trace;
}

/// save()s \p Trace into a fresh buffer.
std::vector<uint8_t> saveBytes(const EventTrace &Trace,
                               uint64_t BlockBytes = 0) {
  BinaryWriter W;
  Trace.save(W, BlockBytes);
  return W.buffer();
}

/// Writes \p Bytes to \p Path.
void writeFile(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  ASSERT_EQ(std::fwrite(Bytes.data(), 1, Bytes.size(), F), Bytes.size());
  ASSERT_EQ(std::fclose(F), 0);
}

/// Reads \p Path back whole.
std::vector<uint8_t> readFile(const std::string &Path) {
  FILE *F = std::fopen(Path.c_str(), "rb");
  EXPECT_NE(F, nullptr);
  std::fseek(F, 0, SEEK_END);
  long Size = std::ftell(F);
  std::fseek(F, 0, SEEK_SET);
  std::vector<uint8_t> Bytes(static_cast<size_t>(Size));
  EXPECT_EQ(std::fread(Bytes.data(), 1, Bytes.size(), F), Bytes.size());
  std::fclose(F);
  return Bytes;
}

const AllocatorKind AllKinds[] = {
    AllocatorKind::Jemalloc,    AllocatorKind::Ptmalloc,
    AllocatorKind::Halo,        AllocatorKind::Hds,
    AllocatorKind::RandomPools, AllocatorKind::HaloInstrumentedOnly,
};

/// Field-by-field bit-identity of everything a run measures.
void expectSameMetrics(const RunMetrics &A, const RunMetrics &B,
                       const std::string &Where) {
  SCOPED_TRACE(Where);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_DOUBLE_EQ(A.Seconds, B.Seconds);
  EXPECT_EQ(A.Mem.Accesses, B.Mem.Accesses);
  EXPECT_EQ(A.Mem.L1Misses, B.Mem.L1Misses);
  EXPECT_EQ(A.Mem.L2Misses, B.Mem.L2Misses);
  EXPECT_EQ(A.Mem.L3Misses, B.Mem.L3Misses);
  EXPECT_EQ(A.Mem.TlbMisses, B.Mem.TlbMisses);
  EXPECT_EQ(A.Mem.StallCycles, B.Mem.StallCycles);
  EXPECT_EQ(A.Frag.PeakResident, B.Frag.PeakResident);
  EXPECT_EQ(A.GroupedAllocs, B.GroupedAllocs);
  EXPECT_EQ(A.ForwardedAllocs, B.ForwardedAllocs);
  EXPECT_EQ(A.InstrumentationOps, B.InstrumentationOps);
}

} // namespace

//===----------------------------------------------------------------------===//
// The block codec
//===----------------------------------------------------------------------===//

TEST(LzCodec, RoundTripsVariedInputs) {
  std::mt19937_64 Rng(42);
  auto RoundTrip = [](const std::vector<uint8_t> &In, const char *What) {
    SCOPED_TRACE(What);
    std::vector<uint8_t> Comp = lz::compress(In.data(), In.size());
    EXPECT_LE(Comp.size(), lz::maxCompressedSize(In.size()));
    std::vector<uint8_t> Out(In.size());
    lz::decompress(Comp.data(), Comp.size(), Out.data(), Out.size());
    EXPECT_EQ(Out, In);
  };

  RoundTrip({}, "empty");
  RoundTrip({7}, "one byte");
  RoundTrip(std::vector<uint8_t>(100000, 0xAA), "constant run");

  // Incompressible: random bytes survive the raw-heavy token path.
  std::vector<uint8_t> Random(70000);
  for (uint8_t &B : Random)
    B = static_cast<uint8_t>(Rng());
  RoundTrip(Random, "random");

  // Trace-shaped: short repeating record skeletons with drifting operands,
  // long enough that matches must reach back across the 64 KiB window
  // boundary (which the codec must refuse, not mis-encode).
  std::vector<uint8_t> TraceLike;
  for (uint32_t I = 0; I < 200000; ++I) {
    TraceLike.push_back(static_cast<uint8_t>(I % 12));
    TraceLike.push_back(static_cast<uint8_t>((I / 7) & 0x7F));
    TraceLike.push_back(static_cast<uint8_t>(I & 0x3F));
  }
  RoundTrip(TraceLike, "trace-shaped");

  // Mixed: compressible spans interleaved with random ones.
  std::vector<uint8_t> Mixed;
  for (int Span = 0; Span < 64; ++Span) {
    size_t N = 100 + static_cast<size_t>(Rng() % 4000);
    if (Span & 1)
      for (size_t I = 0; I < N; ++I)
        Mixed.push_back(static_cast<uint8_t>(Rng()));
    else
      Mixed.insert(Mixed.end(), N, static_cast<uint8_t>(Span));
  }
  RoundTrip(Mixed, "mixed");
}

TEST(LzCodec, RejectsMalformedStreams) {
  std::vector<uint8_t> In(5000);
  for (size_t I = 0; I < In.size(); ++I)
    In[I] = static_cast<uint8_t>(I * 31 % 251);
  std::vector<uint8_t> Comp = lz::compress(In.data(), In.size());
  std::vector<uint8_t> Out(In.size());

  // Truncated source: the decoder must consume exactly SrcN.
  EXPECT_THROW(
      lz::decompress(Comp.data(), Comp.size() - 1, Out.data(), Out.size()),
      SerializationError);
  // Announced destination off by one in either direction.
  EXPECT_THROW(
      lz::decompress(Comp.data(), Comp.size(), Out.data(), Out.size() - 1),
      SerializationError);
  std::vector<uint8_t> Bigger(In.size() + 1);
  EXPECT_THROW(lz::decompress(Comp.data(), Comp.size(), Bigger.data(),
                              Bigger.size()),
               SerializationError);
  // A hand-built sequence whose match offset points before the start of
  // the output: token = no literals + minimum match, offset 0xFFFF.
  const uint8_t BadOffset[] = {0x00, 0xFF, 0xFF};
  uint8_t Small[4];
  EXPECT_THROW(lz::decompress(BadOffset, sizeof(BadOffset), Small, 4),
               SerializationError);
  // A zero match offset (self-overlap before any byte exists).
  const uint8_t ZeroOffset[] = {0x00, 0x00, 0x00};
  EXPECT_THROW(lz::decompress(ZeroOffset, sizeof(ZeroOffset), Small, 4),
               SerializationError);
  // Empty source cannot produce a non-empty destination.
  EXPECT_THROW(lz::decompress(Comp.data(), 0, Out.data(), Out.size()),
               SerializationError);
}

//===----------------------------------------------------------------------===//
// Format: streaming, save/load, the index
//===----------------------------------------------------------------------===//

namespace {

/// Streams one recording of (\p Benchmark, \p S, \p Seed) straight to
/// \p Path with streamTo/finishStream -- the recording never resident.
void streamRecordingToFile(const std::string &Benchmark, Scale S,
                           uint64_t Seed, const std::string &Path,
                           uint64_t BlockBytes = 0) {
  FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  {
    TraceFileWriter FW(F);
    auto W = createWorkload(Benchmark);
    Program P;
    W->build(P);
    EventTrace Trace;
    Trace.streamTo(FW, BlockBytes);
    EXPECT_TRUE(Trace.streaming());
    RecordingArena Arena;
    Runtime RT(P, Arena);
    TraceRecorder Recorder(Trace, Arena);
    RT.addObserver(&Recorder);
    W->run(RT, S, Seed);
    EXPECT_TRUE(Trace.finishStream());
    EXPECT_FALSE(Trace.streaming());
  }
  ASSERT_EQ(std::fclose(F), 0);
}

} // namespace

TEST(TraceFileFormat, StreamedFileMatchesSaveByteForByte) {
  // The block cut rule is one deterministic function of the record bytes,
  // applied identically by the streaming flush and by save()'s scan -- so
  // the two paths must agree on every byte, at the default block size and
  // at a tiny one that forces many cuts.
  EventTrace InRam = recordTrace("health", Scale::Test, 3);
  for (uint64_t BlockBytes : {uint64_t(0), uint64_t(4096)}) {
    SCOPED_TRACE("block bytes " + std::to_string(BlockBytes));
    TempFile File;
    streamRecordingToFile("health", Scale::Test, 3, File.path(), BlockBytes);
    EXPECT_EQ(readFile(File.path()), saveBytes(InRam, BlockBytes));
  }
}

TEST(TraceFileFormat, SaveLoadRoundTripsAcrossBlockCounts) {
  EventTrace Original = recordTrace("ft", Scale::Test, 1);
  // 512-byte blocks force hundreds of cuts; the default typically one.
  for (uint64_t BlockBytes : {uint64_t(512), uint64_t(0)}) {
    SCOPED_TRACE("block bytes " + std::to_string(BlockBytes));
    std::vector<uint8_t> Saved = saveBytes(Original, BlockBytes);
    BinaryReader R(Saved.data(), Saved.size());
    EventTrace Loaded = EventTrace::load(R);
    EXPECT_EQ(Loaded.numEvents(), Original.numEvents());
    EXPECT_EQ(Loaded.numObjects(), Original.numObjects());
    EXPECT_EQ(Loaded.byteSize(), Original.byteSize());
    EXPECT_EQ(Loaded.counts().Allocs, Original.counts().Allocs);
    // Re-saving reproduces the stored bytes exactly (same block rule).
    EXPECT_EQ(saveBytes(Loaded, BlockBytes), Saved);
  }
}

TEST(TraceFileFormat, IndexDescribesExactlyTheBlocks) {
  EventTrace Trace = recordTrace("ft", Scale::Test, 2);
  std::vector<uint8_t> Saved = saveBytes(Trace, /*BlockBytes=*/1024);
  TraceIndex Idx = parseTraceIndex(Saved.data(), Saved.size());

  ASSERT_GT(Idx.Blocks.size(), 1u);
  EXPECT_EQ(Idx.Counts.total(), Trace.numEvents());
  EXPECT_EQ(Idx.Objects, Trace.numObjects());
  EXPECT_EQ(Idx.TotalRawBytes, Trace.byteSize());

  uint64_t Events = 0, Raw = 0, Comp = 0;
  for (size_t B = 0; B < Idx.Blocks.size(); ++B) {
    const TraceBlockInfo &Blk = Idx.Blocks[B];
    SCOPED_TRACE("block " + std::to_string(B));
    // The derived fields are running sums of the predecessors.
    EXPECT_EQ(Blk.FirstEvent, Events);
    EXPECT_EQ(Blk.RawOffset, Raw);
    EXPECT_EQ(Blk.FileOffset, Comp);
    EXPECT_GT(Blk.Events, 0u);
    // Every block but the last reached the cut threshold.
    if (B + 1 < Idx.Blocks.size())
      EXPECT_GE(Blk.RawBytes, 1024u);
    Events += Blk.Events;
    Raw += Blk.RawBytes;
    Comp += Blk.CompBytes;
  }
  EXPECT_EQ(Events, Trace.numEvents());
  EXPECT_EQ(Raw, Trace.byteSize());
  // Payloads fit strictly inside framing + footer.
  EXPECT_LT(TraceHeaderBytes + Comp + TraceTrailerBytes, Saved.size());
}

TEST(TraceFileFormat, OpenRejectsEveryCorruption) {
  EventTrace Trace = recordTrace("ft", Scale::Test, 4);
  std::vector<uint8_t> Saved = saveBytes(Trace, /*BlockBytes=*/4096);
  ASSERT_GT(Saved.size(), 64u);

  TempFile File;
  writeFile(File.path(), Saved);
  EXPECT_NO_THROW(MappedTrace::open(File.path()));

  auto ExpectRejected = [&](std::vector<uint8_t> Bytes, const char *What) {
    SCOPED_TRACE(What);
    TempFile Bad;
    writeFile(Bad.path(), Bytes);
    EXPECT_THROW(MappedTrace::open(Bad.path()), SerializationError);
  };

  std::vector<uint8_t> Mut = Saved;
  Mut[0] ^= 0xFF; // Header magic.
  ExpectRejected(Mut, "bad magic");

  Mut = Saved;
  Mut[4] += 1; // Version.
  ExpectRejected(Mut, "unknown version");

  Mut = Saved;
  Mut[TraceHeaderBytes + Mut.size() / 3] ^= 0x01; // A payload byte.
  ExpectRejected(Mut, "block bit flip");

  Mut = Saved;
  Mut[Mut.size() - TraceTrailerBytes - 2] ^= 0x10; // A footer byte.
  ExpectRejected(Mut, "footer bit flip");

  Mut.assign(Saved.begin(), Saved.begin() + Saved.size() / 2);
  ExpectRejected(Mut, "truncated");

  ExpectRejected({1, 2, 3}, "garbage");

  // Missing file: an I/O error, not a format error.
  EXPECT_THROW(MappedTrace::open("/nonexistent/trace"), std::runtime_error);
}

//===----------------------------------------------------------------------===//
// Mapped decode and replay equivalence
//===----------------------------------------------------------------------===//

TEST(MappedTraceDecode, CursorMatchesInRamCursorAcrossBlockBoundaries) {
  EventTrace Trace = recordTrace("health", Scale::Test, 6);
  TempFile File;
  writeFile(File.path(), saveBytes(Trace, /*BlockBytes=*/2048));
  MappedTrace Mapped = MappedTrace::open(File.path());
  ASSERT_GT(Mapped.numBlocks(), 2u);
  EXPECT_EQ(Mapped.numEvents(), Trace.numEvents());
  EXPECT_EQ(Mapped.numObjects(), Trace.numObjects());
  EXPECT_EQ(Mapped.rawBytes(), Trace.byteSize());

  // Chunk sizes chosen to land fills on, before, and after block cuts.
  for (size_t ChunkSize : {1u, 13u, 4096u}) {
    SCOPED_TRACE("chunk " + std::to_string(ChunkSize));
    EventTrace::Cursor InRam = Trace.cursor();
    MappedTrace::Cursor OnDisk = Mapped.cursor();
    std::vector<TraceEvent> A(ChunkSize), B(ChunkSize);
    uint64_t Total = 0;
    for (;;) {
      size_t NB = OnDisk.fill(B.data(), ChunkSize);
      size_t Want = NB;
      size_t NA = 0;
      // The in-RAM cursor sees no block seams; match its fill sizes.
      while (NA < Want) {
        size_t Got = InRam.fill(A.data() + NA, Want - NA);
        if (!Got)
          break;
        NA += Got;
      }
      ASSERT_EQ(NA, NB);
      if (!NB)
        break;
      for (size_t I = 0; I < NB; ++I) {
        ASSERT_EQ(A[I].Op, B[I].Op) << "record " << Total + I;
        switch (A[I].Op) {
        case TraceOp::Return:
          break;
        case TraceOp::Call:
        case TraceOp::Free:
        case TraceOp::Compute:
          EXPECT_EQ(A[I].A, B[I].A);
          break;
        case TraceOp::Alloc:
        case TraceOp::LoadBase:
        case TraceOp::StoreBase:
        case TraceOp::LoadRaw:
        case TraceOp::StoreRaw:
          EXPECT_EQ(A[I].A, B[I].A);
          EXPECT_EQ(A[I].B, B[I].B);
          break;
        case TraceOp::Load:
        case TraceOp::Store:
        case TraceOp::Realloc:
          EXPECT_EQ(A[I].A, B[I].A);
          EXPECT_EQ(A[I].B, B[I].B);
          EXPECT_EQ(A[I].C, B[I].C);
          break;
        }
      }
      Total += NB;
    }
    EXPECT_TRUE(InRam.atEnd());
    EXPECT_TRUE(OnDisk.atEnd());
    EXPECT_EQ(Total, Trace.numEvents());
  }
}

TEST(MappedTraceReplay, SerialAndShardedMatchTheInRamOracle) {
  // The raw Runtime level of "mapped = in-RAM": same trace, one replay
  // through the buffer and one through the file, every counter equal --
  // serial and sharded, one worker and several.
  auto W = createWorkload("health");
  Program P;
  W->build(P);
  EventTrace Trace = recordTrace("health", Scale::Test, 5);
  TempFile File;
  writeFile(File.path(), saveBytes(Trace, /*BlockBytes=*/8192));
  MappedTrace Mapped = MappedTrace::open(File.path());
  ASSERT_GT(Mapped.numBlocks(), 2u);

  auto Measure = [&](auto Replay) {
    MemoryHierarchy Memory;
    BoundaryTagAllocator Alloc;
    Runtime RT(P, Alloc);
    RT.setMemory(&Memory);
    Replay(RT);
    return std::make_tuple(RT.timing().totalCycles(), RT.stats().Loads,
                           RT.stats().Stores, RT.stats().Allocs,
                           RT.stats().Frees, Memory.counters().L1Misses,
                           Memory.counters().TlbMisses,
                           Memory.counters().Accesses);
  };

  auto Oracle = Measure([&](Runtime &RT) { RT.replay(Trace); });
  EXPECT_EQ(Measure([&](Runtime &RT) { RT.replay(Mapped); }), Oracle);
  for (int Jobs : {1, 4}) {
    SCOPED_TRACE("jobs " + std::to_string(Jobs));
    Executor Pool(Jobs);
    EXPECT_EQ(Measure([&](Runtime &RT) { shardedReplay(RT, Mapped, Pool); }),
              Oracle);
  }
}

//===----------------------------------------------------------------------===//
// TraceMode: the Evaluation and plan levels
//===----------------------------------------------------------------------===//

TEST(TraceModeNames, RoundTripAndRejectUnknown) {
  for (TraceMode M : {TraceMode::Auto, TraceMode::Memory, TraceMode::Mapped}) {
    std::optional<TraceMode> Parsed = parseTraceMode(traceModeName(M));
    ASSERT_TRUE(Parsed.has_value());
    EXPECT_EQ(*Parsed, M);
  }
  EXPECT_FALSE(parseTraceMode("").has_value());
  EXPECT_FALSE(parseTraceMode("disk").has_value());
  EXPECT_FALSE(parseTraceMode("Mapped").has_value());
}

TEST(TraceModeEval, MappedMeasurementsMatchTheMemoryOracle) {
  // Two Evaluations over the same setup, one per mode: every allocator
  // kind must measure bit-identically whether the trace is replayed from
  // RAM or streamed off disk.
  Evaluation Memory(paperSetup("ft"));
  Evaluation Mapped(paperSetup("ft"));
  Mapped.setTraceMode(TraceMode::Mapped);
  EXPECT_EQ(Mapped.traceMode(), TraceMode::Mapped);
  for (AllocatorKind Kind : AllKinds) {
    RunMetrics A = Memory.measure(Kind, Scale::Test, 7);
    RunMetrics B = Mapped.measure(Kind, Scale::Test, 7);
    expectSameMetrics(A, B, std::string("kind ") + allocatorKindName(Kind));
  }
  // The mapped Evaluation held no in-RAM copy of the measurement trace.
  EXPECT_TRUE(Mapped.hasMappedTrace(Scale::Test, 7));
}

TEST(TraceModeEval, ParallelTrialsMatchSerialUnderMappedReplay) {
  Evaluation Memory(paperSetup("health"));
  Evaluation Mapped(paperSetup("health"));
  Mapped.setTraceMode(TraceMode::Mapped);
  auto Oracle = Memory.measureTrials(AllocatorKind::Jemalloc, Scale::Test, 4,
                                     100, /*Jobs=*/1);
  for (int Jobs : {1, 4}) {
    auto Trials = Mapped.measureTrials(AllocatorKind::Jemalloc, Scale::Test,
                                       4, 100, Jobs);
    ASSERT_EQ(Trials.size(), Oracle.size());
    for (size_t T = 0; T < Trials.size(); ++T)
      expectSameMetrics(Oracle[T], Trials[T],
                        "jobs " + std::to_string(Jobs) + " trial " +
                            std::to_string(T));
  }
}

TEST(TraceModeEval, RecordTraceFileWritesAValidImage) {
  Evaluation Eval(paperSetup("ft"));
  TempFile File;
  Eval.recordTraceFile(Scale::Test, 8, File.path());
  MappedTrace Mapped = MappedTrace::open(File.path());
  // The streamed file is byte-identical to saving the in-RAM recording.
  EXPECT_EQ(readFile(File.path()), saveBytes(Eval.trace(Scale::Test, 8)));
  EXPECT_EQ(Mapped.numEvents(), Eval.trace(Scale::Test, 8).numEvents());
}

namespace {

/// One-benchmark spec over every kind, small and deterministic.
ExperimentSpec planSpec() {
  ExperimentSpec Spec;
  Spec.Benchmarks = {"ft"};
  Spec.Kinds = {AllocatorKind::Jemalloc, AllocatorKind::Halo,
                AllocatorKind::Hds};
  Spec.S = Scale::Test;
  Spec.Trials = 2;
  return Spec;
}

void expectSameCells(const ResultSet &A, const ResultSet &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t C = 0; C < A.size(); ++C) {
    ASSERT_EQ(A.cells()[C].Runs.size(), B.cells()[C].Runs.size());
    for (size_t T = 0; T < A.cells()[C].Runs.size(); ++T)
      expectSameMetrics(A.cells()[C].Runs[T], B.cells()[C].Runs[T],
                        "cell " + std::to_string(C) + " trial " +
                            std::to_string(T));
  }
}

} // namespace

TEST(TraceModePlans, EveryModeAndReplayModeMatchesTheMemoryPlan) {
  ExperimentPlan Oracle = buildPlan({planSpec()});
  ResultSet Memory =
      runPlan(Oracle, /*Jobs=*/1, ReplayMode::Auto, TraceMode::Memory);

  for (TraceMode Traces : {TraceMode::Mapped, TraceMode::Auto}) {
    for (ReplayMode Mode : {ReplayMode::Serial, ReplayMode::Sharded}) {
      for (int Jobs : {1, 4}) {
        SCOPED_TRACE(std::string(traceModeName(Traces)) + "/" +
                     replayModeName(Mode) + "/jobs " + std::to_string(Jobs));
        ExperimentPlan Plan = buildPlan({planSpec()});
        expectSameCells(Memory, runPlan(Plan, Jobs, Mode, Traces));
      }
    }
  }
}
