//===- tests/support_test.cpp - Rng / stats / format / dot tests -------------===//

#include "support/Dot.h"
#include "support/Format.h"
#include "support/Rng.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

#include <set>

using namespace halo;

TEST(Rng, DeterministicForSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(Rng, ReseedResets) {
  Rng A(7);
  uint64_t First = A.next();
  A.reseed(7);
  EXPECT_EQ(A.next(), First);
}

TEST(Rng, NextBelowInRange) {
  Rng R(3);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(Rng, NextBelowOneIsZero) {
  Rng R(3);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(R.nextBelow(1), 0u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng R(5);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 2000; ++I) {
    uint64_t V = R.nextInRange(3, 6);
    EXPECT_GE(V, 3u);
    EXPECT_LE(V, 6u);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 4u); // All four values appear.
}

TEST(Rng, NextDoubleUnitInterval) {
  Rng R(11);
  for (int I = 0; I < 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Rng, NextBoolExtremes) {
  Rng R(13);
  for (int I = 0; I < 50; ++I) {
    EXPECT_FALSE(R.nextBool(0.0));
    EXPECT_TRUE(R.nextBool(1.0));
  }
}

TEST(Rng, NextBoolRoughlyCalibrated) {
  Rng R(17);
  int Hits = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I)
    Hits += R.nextBool(0.25);
  EXPECT_NEAR(double(Hits) / N, 0.25, 0.02);
}

TEST(Rng, PickWeightedRespectsZeros) {
  Rng R(23);
  std::vector<double> Weights = {0.0, 1.0, 0.0};
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(R.pickWeighted(Weights), 1u);
}

TEST(Rng, PickWeightedDistribution) {
  Rng R(29);
  std::vector<double> Weights = {1.0, 3.0};
  int Ones = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I)
    Ones += R.pickWeighted(Weights) == 1;
  EXPECT_NEAR(double(Ones) / N, 0.75, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng R(31);
  std::vector<int> V{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Orig = V;
  R.shuffle(V);
  std::multiset<int> A(V.begin(), V.end()), B(Orig.begin(), Orig.end());
  EXPECT_EQ(A, B);
}

TEST(Stats, MedianOdd) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(Stats, MedianEvenInterpolates) {
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Stats, QuantileEndpoints) {
  std::vector<double> V{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(V, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(V, 1.0), 5.0);
}

TEST(Stats, QuantileSingleElement) {
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.25), 7.0);
}

TEST(Stats, SummarizeQuartiles) {
  std::vector<double> V;
  for (int I = 1; I <= 101; ++I)
    V.push_back(I);
  TrialSummary S = summarize(V);
  EXPECT_DOUBLE_EQ(S.Median, 51.0);
  EXPECT_DOUBLE_EQ(S.P25, 26.0);
  EXPECT_DOUBLE_EQ(S.P75, 76.0);
  EXPECT_DOUBLE_EQ(S.Min, 1.0);
  EXPECT_DOUBLE_EQ(S.Max, 101.0);
  EXPECT_EQ(S.Count, 101u);
}

TEST(Stats, MeanOfEmptyIsZero) { EXPECT_DOUBLE_EQ(mean({}), 0.0); }

TEST(Stats, PercentImprovement) {
  EXPECT_DOUBLE_EQ(percentImprovement(200.0, 150.0), 25.0);
  EXPECT_DOUBLE_EQ(percentImprovement(100.0, 110.0), -10.0);
  EXPECT_DOUBLE_EQ(percentImprovement(0.0, 5.0), 0.0);
}

TEST(Format, Bytes) {
  EXPECT_EQ(formatBytes(512), "512B");
  EXPECT_EQ(formatBytes(2048), "2.00KiB");
  EXPECT_EQ(formatBytes(2.05 * 1024 * 1024), "2.05MiB");
}

TEST(Format, Percent) { EXPECT_EQ(formatPercent(26.47), "26.47%"); }

TEST(Format, Padding) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("abcdef", 4), "abcd");
}

TEST(Dot, EmitsNodesAndEdges) {
  DotWriter W("g");
  W.addNode("a", "label a", "#ff0000");
  W.addNode("b", "label b");
  W.addEdge("a", "b", 2.5);
  std::string Text = W.str();
  EXPECT_NE(Text.find("graph \"g\""), std::string::npos);
  EXPECT_NE(Text.find("\"a\" [label=\"label a\""), std::string::npos);
  EXPECT_NE(Text.find("fillcolor=\"#ff0000\""), std::string::npos);
  EXPECT_NE(Text.find("\"a\" -- \"b\" [penwidth=2.5]"), std::string::npos);
}

TEST(Dot, EscapesQuotes) {
  EXPECT_EQ(DotWriter::escape("a\"b\\c"), "a\\\"b\\\\c");
}
