//===- tests/grouping_equivalence_test.cpp - Incremental == reference ----------===//
//
// Property-style equivalence: the incremental buildGroups must produce
// *identical* output (members, order, weights, accesses) to the Figure 6
// reference transliteration on randomized graphs across densities, loop
// fractions, weight ranges, and every grouping knob. Any divergence in
// tie-breaking, float rounding, or candidate enumeration shows up here.
//
//===----------------------------------------------------------------------===//

#include "group/Grouping.h"
#include "support/Executor.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

using namespace halo;

namespace {

struct GraphParams {
  uint32_t Nodes;
  double EdgeProbability; ///< Per candidate pair.
  double LoopProbability; ///< Per node.
  uint64_t MaxWeight;
  bool SparseIds; ///< Spread node ids out (non-contiguous numbering).
};

AffinityGraph randomGraph(const GraphParams &P, uint64_t Seed) {
  Rng Random(Seed);
  AffinityGraph G;
  auto idOf = [&](uint32_t N) {
    return P.SparseIds ? N * 37 + 5 : N;
  };
  for (uint32_t N = 0; N < P.Nodes; ++N) {
    if (Random.nextBool(0.9)) // Some nodes exist only via their edges.
      G.addAccesses(idOf(N), 1 + Random.nextBelow(1000));
    if (Random.nextBool(P.LoopProbability))
      G.addEdgeWeight(idOf(N), idOf(N), 1 + Random.nextBelow(P.MaxWeight));
  }
  for (uint32_t U = 0; U < P.Nodes; ++U)
    for (uint32_t V = U + 1; V < P.Nodes; ++V)
      if (Random.nextBool(P.EdgeProbability))
        G.addEdgeWeight(idOf(U), idOf(V), 1 + Random.nextBelow(P.MaxWeight));
  return G;
}

/// The worker counts the sharded path is checked at: serial-on-pool,
/// small, prime (uneven component partitions), and the full hardware
/// width (HALO_TEST_JOBS overrides the last so ci.sh can pin it).
const std::vector<int> &shardedJobCounts() {
  static const std::vector<int> Counts = [] {
    int Hw = resolveJobs(0);
    if (const char *Env = std::getenv("HALO_TEST_JOBS"))
      Hw = std::max(1, std::atoi(Env));
    std::vector<int> C = {1, 2, 7};
    for (int J : C)
      if (J == Hw)
        return C;
    C.push_back(Hw);
    return C;
  }();
  return Counts;
}

void expectSameGroups(const std::vector<Group> &Ref,
                      const std::vector<Group> &Opt,
                      const std::string &What) {
  ASSERT_EQ(Ref.size(), Opt.size()) << What;
  for (size_t I = 0; I < Ref.size(); ++I) {
    EXPECT_EQ(Ref[I].Members, Opt[I].Members) << What << " group " << I;
    EXPECT_EQ(Ref[I].Weight, Opt[I].Weight) << What << " group " << I;
    EXPECT_EQ(Ref[I].Accesses, Opt[I].Accesses) << What << " group " << I;
  }
}

void expectIdentical(const AffinityGraph &G, const GroupingOptions &Options,
                     const std::string &What) {
  std::vector<Group> Ref = buildGroupsReference(G, Options);
  expectSameGroups(Ref, buildGroups(G, Options), What);
  // The sharded path must match at every jobs count -- including counts
  // where components split unevenly across workers -- whether it groups
  // per component or takes the serial fallback (tolerance outside the
  // safety bound).
  for (int Jobs : shardedJobCounts()) {
    Executor Pool(Jobs);
    expectSameGroups(Ref, buildGroupsParallel(G, Options, Pool),
                     What + " [sharded jobs=" + std::to_string(Jobs) + "]");
  }
}

GroupingOptions lenientOptions() {
  GroupingOptions O;
  O.MinEdgeWeight = 1;
  O.GroupWeightThreshold = 0.0;
  return O;
}

} // namespace

TEST(GroupingEquivalence, EmptyAndTinyGraphs) {
  GroupingOptions O = lenientOptions();
  expectIdentical(AffinityGraph{}, O, "empty");

  AffinityGraph Single;
  Single.addAccesses(3, 10);
  expectIdentical(Single, O, "single node, no edges");

  AffinityGraph LoopOnly;
  LoopOnly.addEdgeWeight(5, 5, 9);
  expectIdentical(LoopOnly, O, "single node, loop only");

  AffinityGraph Pair;
  Pair.addAccesses(1, 4);
  Pair.addAccesses(2, 6);
  Pair.addEdgeWeight(1, 2, 3);
  expectIdentical(Pair, O, "one pair");
}

TEST(GroupingEquivalence, RandomizedSweep) {
  const GraphParams Sweep[] = {
      {8, 0.5, 0.2, 10, false},   {20, 0.3, 0.1, 50, false},
      {20, 0.9, 0.5, 5, true},    {40, 0.1, 0.05, 100, false},
      {60, 0.05, 0.0, 1000, true}, {60, 0.2, 0.3, 3, false},
      {120, 0.03, 0.1, 40, false},
  };
  GroupingOptions O = lenientOptions();
  for (const GraphParams &P : Sweep)
    for (uint64_t Seed = 1; Seed <= 8; ++Seed)
      expectIdentical(randomGraph(P, Seed),
                      O,
                      "nodes=" + std::to_string(P.Nodes) +
                          " seed=" + std::to_string(Seed));
}

TEST(GroupingEquivalence, ToleranceSweep) {
  const GraphParams P{30, 0.25, 0.2, 20, false};
  for (double Tolerance : {0.0, 0.02, 0.05, 0.3, 0.9}) {
    GroupingOptions O = lenientOptions();
    O.MergeTolerance = Tolerance;
    for (uint64_t Seed = 1; Seed <= 5; ++Seed)
      expectIdentical(randomGraph(P, Seed * 13), O,
                      "tolerance=" + std::to_string(Tolerance) +
                          " seed=" + std::to_string(Seed));
  }
}

TEST(GroupingEquivalence, MemberLimitSweep) {
  const GraphParams P{40, 0.3, 0.15, 30, false};
  for (uint32_t MaxMembers : {1u, 2u, 3u, 7u, 16u, 1000u}) {
    GroupingOptions O = lenientOptions();
    O.MaxGroupMembers = MaxMembers;
    for (uint64_t Seed = 1; Seed <= 5; ++Seed)
      expectIdentical(randomGraph(P, Seed * 101), O,
                      "maxMembers=" + std::to_string(MaxMembers) +
                          " seed=" + std::to_string(Seed));
  }
}

TEST(GroupingEquivalence, ThresholdSweep) {
  const GraphParams P{40, 0.2, 0.1, 25, true};
  for (uint64_t MinEdge : {1ull, 3ull, 10ull, 100ull}) {
    for (double GroupThreshold : {0.0, 0.001, 0.02, 0.5}) {
      GroupingOptions O = lenientOptions();
      O.MinEdgeWeight = MinEdge;
      O.GroupWeightThreshold = GroupThreshold;
      for (uint64_t Seed = 1; Seed <= 4; ++Seed)
        expectIdentical(randomGraph(P, Seed * 7 + MinEdge), O,
                        "minEdge=" + std::to_string(MinEdge) + " gthresh=" +
                            std::to_string(GroupThreshold) +
                            " seed=" + std::to_string(Seed));
    }
  }
}

TEST(GroupingEquivalence, MaxGroupsSweep) {
  const GraphParams P{50, 0.15, 0.1, 60, false};
  for (uint32_t MaxGroups : {0u, 1u, 3u, 100u}) {
    GroupingOptions O = lenientOptions();
    O.MaxGroups = MaxGroups;
    for (uint64_t Seed = 1; Seed <= 4; ++Seed)
      expectIdentical(randomGraph(P, Seed * 29), O,
                      "maxGroups=" + std::to_string(MaxGroups) +
                          " seed=" + std::to_string(Seed));
  }
}

TEST(GroupingEquivalence, PaperDefaultOptions) {
  // The defaults the pipeline actually runs with (min weight 2, 5%
  // tolerance, 0.5% group threshold, 16 members).
  GroupingOptions Defaults;
  const GraphParams Sweep[] = {
      {30, 0.3, 0.2, 40, false},
      {80, 0.08, 0.1, 200, true},
      {150, 0.02, 0.05, 30, false},
  };
  for (const GraphParams &P : Sweep)
    for (uint64_t Seed = 1; Seed <= 6; ++Seed)
      expectIdentical(randomGraph(P, Seed * 991), Defaults,
                      "defaults nodes=" + std::to_string(P.Nodes) +
                          " seed=" + std::to_string(Seed));
}

TEST(GroupingEquivalence, DisconnectedCandidatesWithHeavyLoops) {
  // A group seed next to unconnected nodes carrying heavy loop edges: the
  // reference considers *every* available node as a merge candidate, so the
  // incremental path's candidate pruning must still see loop-carrying
  // strangers (class b) and the no-edge/no-loop representative (class c).
  AffinityGraph G;
  G.addAccesses(1, 100);
  G.addAccesses(2, 90);
  G.addEdgeWeight(1, 2, 50);
  G.addEdgeWeight(7, 7, 500); // Heavy loop, no edges to the group.
  G.addEdgeWeight(8, 8, 2);   // Light loop.
  G.addAccesses(9, 80);       // No edges, no loop.
  G.addAccesses(10, 70);      // No edges, no loop.
  for (double Tolerance : {0.0, 0.05, 0.5, 0.99}) {
    GroupingOptions O = lenientOptions();
    O.MergeTolerance = Tolerance;
    expectIdentical(G, O, "tolerance=" + std::to_string(Tolerance));
  }
}

TEST(GroupingEquivalence, TieBreakOnEqualWeightEdges) {
  // Many equal-weight edges: the seed edge must be the first in (U, V)
  // order among the maxima, in both implementations.
  AffinityGraph G;
  for (GraphNodeId N = 0; N < 12; N += 2) {
    G.addAccesses(N, 10);
    G.addAccesses(N + 1, 10);
    G.addEdgeWeight(N, N + 1, 7);
  }
  expectIdentical(G, lenientOptions(), "equal-weight components");

  // Equal node accesses: the seed must be the U endpoint in both.
  AffinityGraph H;
  H.addAccesses(4, 10);
  H.addAccesses(5, 10);
  H.addEdgeWeight(4, 5, 3);
  GroupingOptions O = lenientOptions();
  O.MaxGroupMembers = 1;
  expectIdentical(H, O, "equal-access seed tie");
}
