//===- tests/context_test.cpp - Context reduction / shadow stack tests -------===//

#include "trace/Context.h"
#include "trace/ShadowStack.h"

#include <gtest/gtest.h>

using namespace halo;

namespace {

/// A little binary: main calls a/b; a can recurse; lib is an untraceable
/// external function with a call site back into the binary.
struct TestProgram {
  Program P;
  FunctionId Main, A, B, Lib;
  CallSiteId MainToA, MainToB, AToA, AToB, MainToLib, LibToB, AMalloc, BMalloc;

  TestProgram() {
    Main = P.addFunction("main");
    A = P.addFunction("a");
    B = P.addFunction("b");
    Lib = P.addFunction("libhelper", /*IsExternal=*/true);
    MainToA = P.addCallSite(Main, A, "main>a");
    MainToB = P.addCallSite(Main, B, "main>b");
    AToA = P.addCallSite(A, A, "a>a");
    AToB = P.addCallSite(A, B, "a>b");
    MainToLib = P.addCallSite(Main, Lib, "main>lib");
    LibToB = P.addCallSite(Lib, B, "lib>b"); // Call site in external code.
    AMalloc = P.addMallocSite(A, "a>malloc");
    BMalloc = P.addMallocSite(B, "b>malloc");
  }
};

} // namespace

TEST(ContextReduce, NoRecursionUnchanged) {
  Context C = {{1, 10}, {2, 20}, {3, 30}};
  EXPECT_EQ(reduceContext(C), C);
}

TEST(ContextReduce, KeepsMostRecentOfRepeatedPair) {
  // a>a>a recursion: three identical (function, site) pairs.
  Context C = {{1, 10}, {2, 20}, {2, 20}, {2, 20}, {3, 30}};
  Context Expected = {{1, 10}, {2, 20}, {3, 30}};
  EXPECT_EQ(reduceContext(C), Expected);
}

TEST(ContextReduce, MostRecentInstanceSurvives) {
  // Mutual recursion a>b>a>b: the *later* duplicates survive, preserving
  // relative order of the retained frames.
  Context C = {{1, 10}, {2, 20}, {1, 10}, {2, 20}};
  Context Expected = {{1, 10}, {2, 20}};
  EXPECT_EQ(reduceContext(C), Expected);
}

TEST(ContextReduce, SameFunctionDifferentSitesKept) {
  // Recursive calls through *different* call sites are distinct pairs.
  Context C = {{2, 20}, {2, 21}, {2, 20}};
  Context Expected = {{2, 21}, {2, 20}};
  EXPECT_EQ(reduceContext(C), Expected);
}

TEST(ContextTable, InternsDeterministically) {
  ContextTable T;
  Context C1 = {{1, 10}, {2, 20}};
  Context C2 = {{1, 10}, {2, 21}};
  ContextId I1 = T.intern(C1);
  ContextId I2 = T.intern(C2);
  EXPECT_NE(I1, I2);
  EXPECT_EQ(T.intern(C1), I1);
  EXPECT_EQ(T.size(), 2u);
}

TEST(ContextTable, ChainIsSortedUniqueSites) {
  ContextTable T;
  ContextId Id = T.intern({{1, 30}, {2, 10}, {3, 30}});
  const ContextInfo &Info = T.info(Id);
  EXPECT_EQ(Info.Chain, (std::vector<CallSiteId>{10, 30}));
  EXPECT_TRUE(Info.chainContains(10));
  EXPECT_FALSE(Info.chainContains(20));
}

TEST(ShadowStack, PushesMainBinaryCalls) {
  TestProgram TP;
  ShadowStack S(TP.P);
  S.onCall(TP.MainToA);
  S.onCall(TP.AToB);
  ASSERT_EQ(S.frames().size(), 2u);
  EXPECT_EQ(S.frames()[0].Function, TP.A);
  EXPECT_EQ(S.frames()[1].Function, TP.B);
  S.onReturn();
  EXPECT_EQ(S.frames().size(), 1u);
}

TEST(ShadowStack, SkipsUntraceableExternalTargets) {
  TestProgram TP;
  ShadowStack S(TP.P);
  S.onCall(TP.MainToLib); // External target: no frame.
  EXPECT_EQ(S.frames().size(), 0u);
  EXPECT_EQ(S.rawDepth(), 1u);
  S.onReturn();
  EXPECT_EQ(S.rawDepth(), 0u);
}

TEST(ShadowStack, ExternalCallSiteTracedToOrigin) {
  TestProgram TP;
  ShadowStack S(TP.P);
  S.onCall(TP.MainToA);  // Main-binary frame: site main>a.
  S.onCall(TP.MainToLib); // Into external code (modelling a callback).
  S.onCall(TP.LibToB);   // Call site inside external code.
  ASSERT_EQ(S.frames().size(), 2u);
  // b's frame is attributed to the nearest main-binary site, main>a.
  EXPECT_EQ(S.frames()[1].Function, TP.B);
  EXPECT_EQ(S.frames()[1].Site, TP.MainToA);
}

TEST(ShadowStack, AllocationContextAppendsMallocFrame) {
  TestProgram TP;
  ShadowStack S(TP.P);
  S.onCall(TP.MainToA);
  Context C = S.allocationContext(TP.AMalloc);
  ASSERT_EQ(C.size(), 2u);
  EXPECT_EQ(C[0].Site, TP.MainToA);
  EXPECT_EQ(C[1].Function, TP.P.mallocFunction());
  EXPECT_EQ(C[1].Site, TP.AMalloc);
}

TEST(ShadowStack, RecursiveStackReduces) {
  TestProgram TP;
  ShadowStack S(TP.P);
  S.onCall(TP.MainToA);
  S.onCall(TP.AToA);
  S.onCall(TP.AToA);
  S.onCall(TP.AToA);
  EXPECT_EQ(S.frames().size(), 4u);
  Context C = S.allocationContext(TP.AMalloc);
  // Reduced: main>a, a>a (once), malloc.
  ASSERT_EQ(C.size(), 3u);
  EXPECT_EQ(C[0].Site, TP.MainToA);
  EXPECT_EQ(C[1].Site, TP.AToA);
  EXPECT_EQ(C[2].Site, TP.AMalloc);
}

TEST(ShadowStack, BalancedAfterMixedCalls) {
  TestProgram TP;
  ShadowStack S(TP.P);
  S.onCall(TP.MainToA);
  S.onCall(TP.MainToLib);
  S.onCall(TP.LibToB);
  S.onReturn();
  S.onReturn();
  S.onReturn();
  EXPECT_EQ(S.frames().size(), 0u);
  EXPECT_EQ(S.rawDepth(), 0u);
}

TEST(ContextTable, DescribeUsesLabels) {
  TestProgram TP;
  ContextTable T;
  ContextId Id = T.intern({{TP.A, TP.MainToA}, {TP.B, TP.AToB}});
  EXPECT_EQ(T.describe(Id, TP.P), "main>a>a>b");
}
