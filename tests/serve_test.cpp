//===- tests/serve_test.cpp - The halo serve daemon --------------------------===//
//
// The serve contracts. Protocol layer: frames round-trip, and every
// malformed input -- bad magic, unknown type, oversized or truncated
// frames, out-of-domain payload fields -- is rejected as ProtocolError
// with no crash and no daemon exit. Daemon layer: "served = local"
// (README): the cells a client streams back from the daemon reassemble
// byte-identical (through writeExperimentsJson) to a local runPlan of the
// same spec -- across machines, all allocator kinds, concurrent clients,
// a warm artifact store, and a cancel on a neighbouring client.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Protocol.h"
#include "serve/Server.h"
#include "serve/Session.h"
#include "eval/Experiment.h"
#include "support/Socket.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace halo;

namespace {

//===----------------------------------------------------------------------===//
// Protocol layer (no daemon): frames over a socketpair.
//===----------------------------------------------------------------------===//

/// A connected socket pair; Frames written to one end read off the other.
struct Pair {
  Socket A, B;
  Pair() {
    int Fds[2];
    EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds));
    A = Socket(Fds[0]);
    B = Socket(Fds[1]);
  }
};

TEST(ServeProtocol, FramesRoundTripAndEofIsClean) {
  Pair P;
  writeFrame(P.A, MsgType::Hello, encodeHello(ServeProtocolVersion));
  writeFrame(P.A, MsgType::Stats, {});
  std::optional<Frame> F = readFrame(P.B);
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(MsgType::Hello, F->Type);
  EXPECT_EQ(ServeProtocolVersion, decodeHello(F->Payload));
  F = readFrame(P.B);
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(MsgType::Stats, F->Type);
  EXPECT_TRUE(F->Payload.empty());
  // A close at a frame boundary is end-of-stream, not an error.
  P.A.close();
  EXPECT_FALSE(readFrame(P.B).has_value());
}

TEST(ServeProtocol, BadMagicRejected) {
  Pair P;
  const uint8_t Junk[9] = {'J', 'U', 'N', 'K', 1, 0, 0, 0, 0};
  P.A.sendAll(Junk, sizeof(Junk));
  EXPECT_THROW(readFrame(P.B), ProtocolError);
}

TEST(ServeProtocol, UnknownTypeRejected) {
  Pair P;
  // Valid magic 'HSRV', type 200, zero-length payload.
  const uint8_t Hdr[9] = {'H', 'S', 'R', 'V', 200, 0, 0, 0, 0};
  P.A.sendAll(Hdr, sizeof(Hdr));
  EXPECT_THROW(readFrame(P.B), ProtocolError);
}

TEST(ServeProtocol, OversizedFrameRejectedBeforePayload) {
  Pair P;
  // Length field 0xFFFFFFFF: rejected from the header alone -- no
  // attempt to allocate or read 4 GiB.
  const uint8_t Hdr[9] = {'H', 'S', 'R', 'V', 1, 0xFF, 0xFF, 0xFF, 0xFF};
  P.A.sendAll(Hdr, sizeof(Hdr));
  EXPECT_THROW(readFrame(P.B), ProtocolError);
}

TEST(ServeProtocol, TruncatedHeaderRejected) {
  Pair P;
  const uint8_t Partial[3] = {'H', 'S', 'R'};
  P.A.sendAll(Partial, sizeof(Partial));
  P.A.close();
  EXPECT_THROW(readFrame(P.B), ProtocolError);
}

TEST(ServeProtocol, TruncatedPayloadRejected) {
  Pair P;
  // Header promises 16 payload bytes; only 4 arrive before the close.
  const uint8_t Hdr[9] = {'H', 'S', 'R', 'V', 1, 16, 0, 0, 0};
  const uint8_t Some[4] = {1, 2, 3, 4};
  P.A.sendAll(Hdr, sizeof(Hdr));
  P.A.sendAll(Some, sizeof(Some));
  P.A.close();
  EXPECT_THROW(readFrame(P.B), ProtocolError);
}

TEST(ServeProtocol, PlanRequestRoundTrips) {
  PlanRequest R;
  R.Benchmarks = {"health", "ft"};
  R.Machines = {"mobile", "xeon-w2195"};
  R.Kinds = allAllocatorKinds();
  R.S = Scale::Test;
  R.Trials = 5;
  R.SeedBase = 424242;
  PlanRequest D = decodePlanRequest(encodePlanRequest(R));
  EXPECT_EQ(R.Benchmarks, D.Benchmarks);
  EXPECT_EQ(R.Machines, D.Machines);
  EXPECT_EQ(R.Kinds, D.Kinds);
  EXPECT_EQ(R.S, D.S);
  EXPECT_EQ(R.Trials, D.Trials);
  EXPECT_EQ(R.SeedBase, D.SeedBase);
}

TEST(ServeProtocol, MalformedPayloadsRejected) {
  // Truncated mid-structure.
  std::vector<uint8_t> Enc = encodePlanRequest(PlanRequest{});
  Enc.resize(Enc.size() / 2);
  EXPECT_THROW(decodePlanRequest(Enc), ProtocolError);
  // Trailing garbage.
  Enc = encodePlanRequest(PlanRequest{});
  Enc.push_back(0);
  EXPECT_THROW(decodePlanRequest(Enc), ProtocolError);
  // Zero trials is out of domain.
  PlanRequest Bad;
  Bad.Benchmarks = {"health"};
  Bad.Trials = 0;
  EXPECT_THROW(decodePlanRequest(encodePlanRequest(Bad)), ProtocolError);
  // Wrong payload for the type.
  EXPECT_THROW(decodeHello(encodePlanRequest(PlanRequest{})), ProtocolError);
}

TEST(ServeProtocol, CellResultPreservesMetricBitPatterns) {
  CellResultMsg M;
  M.PlanId = 7;
  M.CellIndex = 3;
  M.Key.Benchmark = "health";
  M.Key.Machine = "mobile";
  M.Key.Kind = AllocatorKind::Halo;
  M.Key.S = Scale::Test;
  M.Key.SeedBase = 100;
  M.Key.Trials = 2;
  RunMetrics R;
  R.Seconds = 0.1234567890123456789; // Exercises the full f64 pattern.
  R.Cycles = 987654321;
  R.Mem.L1Misses = 11;
  R.Mem.TlbMisses = 22;
  R.Frag.PeakResident = 1 << 20;
  R.GroupedAllocs = 33;
  M.Runs = {R, RunMetrics{}};
  CellResultMsg D = decodeCellResult(encodeCellResult(M));
  EXPECT_EQ(M.PlanId, D.PlanId);
  EXPECT_EQ(M.CellIndex, D.CellIndex);
  EXPECT_EQ(M.Key.Benchmark, D.Key.Benchmark);
  EXPECT_EQ(M.Key.Kind, D.Key.Kind);
  ASSERT_EQ(2u, D.Runs.size());
  // Bit-for-bit, not approximately: "served = local" is a byte contract.
  double Expected = R.Seconds, Got = D.Runs[0].Seconds;
  EXPECT_EQ(0, std::memcmp(&Expected, &Got, sizeof(double)));
  EXPECT_EQ(R.Cycles, D.Runs[0].Cycles);
  EXPECT_EQ(R.Mem.L1Misses, D.Runs[0].Mem.L1Misses);
  EXPECT_EQ(R.Frag.PeakResident, D.Runs[0].Frag.PeakResident);
}

//===----------------------------------------------------------------------===//
// Daemon layer: an in-process daemon on a temp socket.
//===----------------------------------------------------------------------===//

/// The experiments JSON document for \p Results, as a string -- the byte
/// surface the served-vs-local comparisons equate.
std::string experimentsJson(const ResultSet &Results) {
  char *Buf = nullptr;
  size_t Len = 0;
  FILE *Out = open_memstream(&Buf, &Len);
  EXPECT_NE(nullptr, Out);
  writeExperimentsJson(Out, Results);
  std::fclose(Out);
  std::string Text(Buf, Len);
  std::free(Buf);
  return Text;
}

/// Runs \p R locally, serially, through the same buildPlan/runPlan path
/// the daemon uses -- the oracle for every served comparison.
std::string localOracle(const PlanRequest &R) {
  ExperimentSpec Spec;
  Spec.Benchmarks = R.Benchmarks;
  for (const std::string &Name : R.Machines) {
    const MachineConfig *M = findMachine(Name);
    EXPECT_NE(nullptr, M) << Name;
    Spec.Machines.push_back(M);
  }
  Spec.Kinds = R.Kinds;
  Spec.S = R.S;
  Spec.Trials = R.Trials;
  Spec.SeedBase = R.SeedBase;
  ExperimentPlan Plan = buildPlan({Spec});
  ResultSet Results = runPlan(Plan, /*Jobs=*/1);
  return experimentsJson(Results);
}

class ServeDaemonTest : public ::testing::Test {
protected:
  void start(DaemonConfig Config = {}) {
    char Template[] = "/tmp/halo_serve_test_XXXXXX";
    ASSERT_NE(nullptr, ::mkdtemp(Template));
    Dir = Template;
    SocketPath = Dir + "/halo.sock";
    Config.SocketPath = SocketPath;
    if (Config.Jobs == 0)
      Config.Jobs = 2;
    Daemon = std::make_unique<HaloDaemon>(Config);
    Server = std::thread([this] { ExitCode = Daemon->serve(); });
    // Wait for the daemon to bind (listenUnix creates the file).
    for (int I = 0; I < 500 && ::access(SocketPath.c_str(), F_OK) != 0; ++I)
      ::usleep(10000);
  }

  void TearDown() override {
    if (Daemon) {
      Daemon->requestShutdown();
      if (Server.joinable())
        Server.join();
      EXPECT_EQ(0, ExitCode);
      // Clean shutdown removes the socket file.
      EXPECT_NE(0, ::access(SocketPath.c_str(), F_OK));
      Daemon.reset();
    }
    if (!Dir.empty()) {
      std::string Cmd = "rm -rf '" + Dir + "'";
      (void)std::system(Cmd.c_str());
    }
  }

  /// Connects, retrying across the bind/listen race.
  HaloClient connect() {
    for (int I = 0;; ++I) {
      try {
        return HaloClient(SocketPath);
      } catch (const std::runtime_error &) {
        if (I >= 200)
          throw;
        ::usleep(10000);
      }
    }
  }

  std::string Dir, SocketPath;
  std::unique_ptr<HaloDaemon> Daemon;
  std::thread Server;
  int ExitCode = -1;
};

/// The headline matrix: 2 benchmarks x 2 machines x every allocator kind.
PlanRequest headlineRequest() {
  PlanRequest R;
  R.Benchmarks = {"health", "ft"};
  R.Machines = {"xeon-w2195", "mobile"};
  R.Kinds = allAllocatorKinds();
  R.S = Scale::Test;
  R.Trials = 2;
  return R;
}

TEST_F(ServeDaemonTest, ServedMatchesLocal) {
  start();
  PlanRequest R = headlineRequest();
  std::string Local = localOracle(R);

  HaloClient Client = connect();
  EXPECT_EQ(2u, Client.serverWorkers());
  uint64_t PlanId = Client.submit(R);
  size_t Streamed = 0;
  PlanOutcome Outcome =
      Client.wait(PlanId, [&](const CellResultMsg &) { ++Streamed; });
  EXPECT_EQ(PlanStatus::Ok, Outcome.Status);
  EXPECT_EQ(Outcome.NumCells, Outcome.CellsReceived);
  EXPECT_EQ(Outcome.CellsReceived, Streamed);
  EXPECT_EQ(Local, experimentsJson(Outcome.Results));
}

TEST_F(ServeDaemonTest, SecondPlanServedWarmIsIdentical) {
  DaemonConfig Config;
  char Template[] = "/tmp/halo_serve_store_XXXXXX";
  ASSERT_NE(nullptr, ::mkdtemp(Template));
  std::string StoreDir = Template;
  Config.StoreDir = StoreDir;
  start(Config);

  PlanRequest R = headlineRequest();
  std::string Local = localOracle(R);

  // Cold: first client pays the pipeline and populates caches + store.
  {
    HaloClient Client = connect();
    EXPECT_TRUE(Client.serverHasStore());
    PlanOutcome Outcome = Client.wait(Client.submit(R));
    EXPECT_EQ(PlanStatus::Ok, Outcome.Status);
    EXPECT_EQ(Local, experimentsJson(Outcome.Results));
  }
  // Warm: a new connection, served from the daemon's warm Evaluations.
  {
    HaloClient Client = connect();
    PlanOutcome Outcome = Client.wait(Client.submit(R));
    EXPECT_EQ(PlanStatus::Ok, Outcome.Status);
    EXPECT_EQ(Local, experimentsJson(Outcome.Results));
    DaemonStats St = Client.stats();
    EXPECT_EQ(2u, St.WarmBenchmarks);
    EXPECT_TRUE(St.HasStore);
    EXPECT_EQ(2u, St.PlansCompleted);
  }
  std::string Cmd = "rm -rf '" + StoreDir + "'";
  (void)std::system(Cmd.c_str());
}

TEST_F(ServeDaemonTest, ConcurrentClientsEachMatchLocal) {
  start();
  // Distinct specs so the scheduler genuinely interleaves two different
  // plans' stages on the one pool.
  PlanRequest RA;
  RA.Benchmarks = {"health"};
  RA.Machines = {"xeon-w2195", "mobile"};
  RA.Kinds = allAllocatorKinds();
  RA.S = Scale::Test;
  RA.Trials = 2;
  PlanRequest RB;
  RB.Benchmarks = {"ft"};
  RB.Machines = {"mobile"};
  RB.Kinds = {AllocatorKind::Jemalloc, AllocatorKind::Hds,
              AllocatorKind::Halo};
  RB.S = Scale::Test;
  RB.Trials = 3;
  std::string LocalA = localOracle(RA);
  std::string LocalB = localOracle(RB);

  std::string ServedA, ServedB;
  std::thread TA([&] {
    HaloClient Client = connect();
    PlanOutcome Outcome = Client.wait(Client.submit(RA));
    EXPECT_EQ(PlanStatus::Ok, Outcome.Status);
    ServedA = experimentsJson(Outcome.Results);
  });
  std::thread TB([&] {
    HaloClient Client = connect();
    PlanOutcome Outcome = Client.wait(Client.submit(RB));
    EXPECT_EQ(PlanStatus::Ok, Outcome.Status);
    ServedB = experimentsJson(Outcome.Results);
  });
  TA.join();
  TB.join();
  EXPECT_EQ(LocalA, ServedA);
  EXPECT_EQ(LocalB, ServedB);
}

TEST_F(ServeDaemonTest, CancelLeavesTheOtherClientUnharmed) {
  start();
  // A submits the bigger plan and cancels it the moment its first cell
  // streams; B's smaller plan must still complete bit-exact.
  PlanRequest RA = headlineRequest();
  RA.Trials = 3;
  PlanRequest RB;
  RB.Benchmarks = {"health"};
  RB.Machines = {"mobile"};
  RB.Kinds = {AllocatorKind::Jemalloc, AllocatorKind::Halo};
  RB.S = Scale::Test;
  RB.Trials = 2;
  std::string LocalB = localOracle(RB);

  PlanStatus StatusA = PlanStatus::Failed;
  std::thread TA([&] {
    HaloClient Client = connect();
    uint64_t PlanId = Client.submit(RA);
    PlanOutcome Outcome = Client.wait(PlanId, [&](const CellResultMsg &) {
      // Full duplex: a Cancel issued mid-stream, from the wait loop.
      Client.cancel(PlanId);
    });
    StatusA = Outcome.Status;
  });
  std::thread TB([&] {
    HaloClient Client = connect();
    PlanOutcome Outcome = Client.wait(Client.submit(RB));
    EXPECT_EQ(PlanStatus::Ok, Outcome.Status);
    EXPECT_EQ(LocalB, experimentsJson(Outcome.Results));
  });
  TA.join();
  TB.join();
  // A raced its cancel against its own completion; either way it must
  // not have failed -- and the daemon is still serving.
  EXPECT_TRUE(StatusA == PlanStatus::Cancelled || StatusA == PlanStatus::Ok);
  HaloClient Client = connect();
  DaemonStats St = Client.stats();
  EXPECT_EQ(2u, St.PlansSubmitted);
  EXPECT_GE(St.CellsStreamed, 1u);
}

TEST_F(ServeDaemonTest, BadRequestsGetErrorsNotACrash) {
  start();
  // Unknown benchmark: a well-formed frame the daemon must refuse.
  {
    HaloClient Client = connect();
    PlanRequest R;
    R.Benchmarks = {"no-such-benchmark"};
    R.S = Scale::Test;
    EXPECT_THROW(Client.submit(R), std::runtime_error);
    // The refusal poisons nothing: the same connection still serves.
    DaemonStats St = Client.stats();
    EXPECT_EQ(0u, St.PlansSubmitted);
  }
  // Unknown machine preset.
  {
    HaloClient Client = connect();
    PlanRequest R;
    R.Benchmarks = {"health"};
    R.Machines = {"cray-1"};
    R.S = Scale::Test;
    EXPECT_THROW(Client.submit(R), std::runtime_error);
  }
  // A malformed SubmitPlan payload: protocol error back, session closed,
  // daemon alive.
  {
    Socket Raw = Socket::connectUnix(SocketPath);
    writeFrame(Raw, MsgType::Hello, encodeHello(ServeProtocolVersion));
    std::optional<Frame> Ack = readFrame(Raw);
    ASSERT_TRUE(Ack.has_value());
    ASSERT_EQ(MsgType::HelloAck, Ack->Type);
    writeFrame(Raw, MsgType::SubmitPlan, {0xDE, 0xAD, 0xBE, 0xEF});
    std::optional<Frame> Err = readFrame(Raw);
    ASSERT_TRUE(Err.has_value());
    EXPECT_EQ(MsgType::Error, Err->Type);
    EXPECT_FALSE(readFrame(Raw).has_value()); // Daemon closed the session.
  }
  // Version mismatch at handshake.
  {
    Socket Raw = Socket::connectUnix(SocketPath);
    writeFrame(Raw, MsgType::Hello, encodeHello(999));
    std::optional<Frame> Err = readFrame(Raw);
    ASSERT_TRUE(Err.has_value());
    EXPECT_EQ(MsgType::Error, Err->Type);
    EXPECT_NE(std::string::npos,
              decodeError(Err->Payload).Message.find("version"));
  }
  // After all of that, a well-formed plan still runs to completion.
  HaloClient Client = connect();
  PlanRequest R;
  R.Benchmarks = {"health"};
  R.Kinds = {AllocatorKind::Jemalloc};
  R.S = Scale::Test;
  R.Trials = 1;
  PlanOutcome Outcome = Client.wait(Client.submit(R));
  EXPECT_EQ(PlanStatus::Ok, Outcome.Status);
}

TEST_F(ServeDaemonTest, ClientShutdownStopsTheDaemon) {
  start();
  {
    HaloClient Client = connect();
    Client.shutdownServer();
  }
  Server.join();
  EXPECT_EQ(0, ExitCode);
  EXPECT_NE(0, ::access(SocketPath.c_str(), F_OK));
  Daemon.reset();
  std::string Cmd = "rm -rf '" + Dir + "'";
  (void)std::system(Cmd.c_str());
  Dir.clear();
}

} // namespace
