//===- tests/allocators_test.cpp - Baseline allocator tests -------------------===//

#include "mem/BoundaryTagAllocator.h"
#include "mem/RandomPoolAllocator.h"
#include "mem/SizeClassAllocator.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

using namespace halo;

namespace {
AllocRequest req(uint64_t Size) { return AllocRequest{Size, 0}; }
} // namespace

TEST(SizeClass, ClassLadderMatchesJemallocShape) {
  SizeClassAllocator A;
  EXPECT_EQ(A.sizeClassFor(1), 8u);
  EXPECT_EQ(A.sizeClassFor(8), 8u);
  EXPECT_EQ(A.sizeClassFor(9), 16u);
  EXPECT_EQ(A.sizeClassFor(17), 32u);
  EXPECT_EQ(A.sizeClassFor(100), 112u);
  EXPECT_EQ(A.sizeClassFor(128), 128u);
  EXPECT_EQ(A.sizeClassFor(129), 160u);
  EXPECT_EQ(A.sizeClassFor(257), 320u);
  EXPECT_EQ(A.sizeClassFor(16384), 16384u);
}

TEST(SizeClass, LargeSizesPageRounded) {
  SizeClassAllocator A;
  EXPECT_EQ(A.sizeClassFor(16385), 20480u);
  EXPECT_EQ(A.sizeClassFor(65536), 65536u);
}

TEST(SizeClass, SameClassAllocationsAreContiguous) {
  // The Figure 1 behaviour: same-size allocations land in the same run in
  // allocation order.
  SizeClassAllocator A;
  uint64_t X = A.allocate(req(24));
  uint64_t Y = A.allocate(req(24));
  uint64_t Z = A.allocate(req(24));
  EXPECT_EQ(Y, X + 32); // The 24B request maps to the 32B class.
  EXPECT_EQ(Z, Y + 32);
}

TEST(SizeClass, DifferentClassesSegregated) {
  SizeClassAllocator A;
  uint64_t Small = A.allocate(req(24));
  uint64_t Big = A.allocate(req(200));
  uint64_t Small2 = A.allocate(req(24));
  // The interleaved big allocation does not break small-class contiguity.
  EXPECT_EQ(Small2, Small + 32);
  EXPECT_NE(Big / VirtualArena::PageSize, Small / VirtualArena::PageSize);
}

TEST(SizeClass, FreeListIsLifo) {
  SizeClassAllocator A;
  uint64_t X = A.allocate(req(40));
  uint64_t Y = A.allocate(req(40));
  A.deallocate(X);
  A.deallocate(Y);
  EXPECT_EQ(A.allocate(req(40)), Y); // Most recently freed comes back first.
  EXPECT_EQ(A.allocate(req(40)), X);
}

TEST(SizeClass, LiveBytesTracksRequests) {
  SizeClassAllocator A;
  uint64_t X = A.allocate(req(24));
  A.allocate(req(100));
  EXPECT_EQ(A.liveBytes(), 124u);
  A.deallocate(X);
  EXPECT_EQ(A.liveBytes(), 100u);
}

TEST(SizeClass, UsableSizeIsClassSize) {
  SizeClassAllocator A;
  uint64_t X = A.allocate(req(24));
  EXPECT_EQ(A.usableSize(X), 32u);
}

TEST(SizeClass, OwnsOnlyLiveRegions) {
  SizeClassAllocator A;
  uint64_t X = A.allocate(req(24));
  EXPECT_TRUE(A.owns(X));
  A.deallocate(X);
  EXPECT_FALSE(A.owns(X));
}

TEST(SizeClass, LargeAllocationReleasedOnFree) {
  SizeClassAllocator A;
  uint64_t X = A.allocate(req(100000));
  uint64_t Before = A.residentBytes();
  EXPECT_GE(Before, 100000u);
  A.deallocate(X);
  EXPECT_LT(A.residentBytes(), Before);
}

TEST(SizeClass, ZeroSizeAllocationsAreDistinct) {
  SizeClassAllocator A;
  uint64_t X = A.allocate(req(0));
  uint64_t Y = A.allocate(req(0));
  EXPECT_NE(X, Y);
}

TEST(SizeClass, ManyAllocationsStayWithinReservedSpace) {
  SizeClassAllocator A;
  std::vector<uint64_t> Addrs;
  for (int I = 0; I < 10000; ++I)
    Addrs.push_back(A.allocate(req(48)));
  std::set<uint64_t> Unique(Addrs.begin(), Addrs.end());
  EXPECT_EQ(Unique.size(), Addrs.size());
  EXPECT_EQ(A.liveCount(), 10000u);
}

TEST(BoundaryTag, PayloadsSpacedByHeader) {
  BoundaryTagAllocator A;
  uint64_t X = A.allocate(req(24));
  uint64_t Y = A.allocate(req(24));
  // 24B payload + 16B header rounds to a 48B chunk: ptmalloc-style spread.
  EXPECT_EQ(Y - X, 48u);
}

TEST(BoundaryTag, ExactBinReuse) {
  BoundaryTagAllocator A;
  uint64_t X = A.allocate(req(24));
  A.allocate(req(24));
  A.deallocate(X);
  EXPECT_EQ(A.allocate(req(24)), X);
}

TEST(BoundaryTag, BestFitSplitsLargeChunks) {
  BoundaryTagAllocator A;
  uint64_t Big = A.allocate(req(4000));
  A.allocate(req(24)); // Hold the heap top away.
  A.deallocate(Big);
  // A small allocation is carved from the freed big chunk's space.
  uint64_t Small = A.allocate(req(2000));
  EXPECT_EQ(Small, Big);
}

TEST(BoundaryTag, UsableSizeExcludesHeader) {
  BoundaryTagAllocator A;
  uint64_t X = A.allocate(req(24));
  EXPECT_GE(A.usableSize(X), 24u);
  EXPECT_LT(A.usableSize(X), 24u + 16u + 16u);
}

TEST(BoundaryTag, LiveBytesAndOwnership) {
  BoundaryTagAllocator A;
  uint64_t X = A.allocate(req(100));
  EXPECT_TRUE(A.owns(X));
  EXPECT_EQ(A.liveBytes(), 100u);
  A.deallocate(X);
  EXPECT_FALSE(A.owns(X));
  EXPECT_EQ(A.liveBytes(), 0u);
}

TEST(RandomPools, SmallObjectsScatterAcrossPools) {
  SizeClassAllocator Backing(0x7000000000ull);
  RandomPoolAllocator A(Backing, /*Seed=*/9);
  // With four pools, 200 allocations should land in several distinct
  // 1 MiB-aligned chunks.
  std::set<uint64_t> ChunkBases;
  for (int I = 0; I < 200; ++I) {
    uint64_t Addr = A.allocate(req(32));
    ChunkBases.insert(Addr & ~uint64_t((1 << 20) - 1));
  }
  EXPECT_EQ(ChunkBases.size(), 4u);
}

TEST(RandomPools, PageSizedRequestsForwarded) {
  SizeClassAllocator Backing(0x7000000000ull);
  RandomPoolAllocator A(Backing, 9);
  uint64_t Big = A.allocate(req(4096));
  EXPECT_TRUE(Backing.owns(Big));
  A.deallocate(Big);
  EXPECT_FALSE(Backing.owns(Big));
}

TEST(RandomPools, FreeingEverythingReleasesChunks) {
  SizeClassAllocator Backing(0x7000000000ull);
  RandomPoolAllocator A(Backing, 9);
  std::vector<uint64_t> Addrs;
  for (int I = 0; I < 1000; ++I)
    Addrs.push_back(A.allocate(req(64)));
  uint64_t Resident = A.residentBytes();
  EXPECT_GT(Resident, 0u);
  for (uint64_t Addr : Addrs)
    A.deallocate(Addr);
  EXPECT_EQ(A.liveBytes(), 0u);
}

TEST(RandomPools, DeterministicForSeed) {
  SizeClassAllocator B1(0x7000000000ull), B2(0x7100000000ull);
  RandomPoolAllocator A1(B1, 77, 0x7200000000ull);
  RandomPoolAllocator A2(B2, 77, 0x7200000000ull);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A1.allocate(req(32)), A2.allocate(req(32)));
}
