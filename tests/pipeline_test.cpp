//===- tests/pipeline_test.cpp - End-to-end HALO pipeline ---------------------===//

#include "core/Pipeline.h"
#include "mem/SizeClassAllocator.h"

#include <gtest/gtest.h>

using namespace halo;

namespace {

/// A miniature povray: hot types A and B via a wrapper, cold type C.
struct MiniPovray {
  Program P;
  FunctionId Main, Parse, CreateA, CreateB, CreateC, Wrapper, Render;
  CallSiteId SParse, SA, SB, SC, SAW, SBW, SCW, SMalloc, SRender;

  MiniPovray() {
    Main = P.addFunction("main");
    Parse = P.addFunction("parse");
    CreateA = P.addFunction("create_a");
    CreateB = P.addFunction("create_b");
    CreateC = P.addFunction("create_c");
    Wrapper = P.addFunction("wrap_malloc");
    Render = P.addFunction("render");
    SParse = P.addCallSite(Main, Parse, "main>parse");
    SA = P.addCallSite(Parse, CreateA, "parse>create_a");
    SB = P.addCallSite(Parse, CreateB, "parse>create_b");
    SC = P.addCallSite(Parse, CreateC, "parse>create_c");
    SAW = P.addCallSite(CreateA, Wrapper, "create_a>wrap");
    SBW = P.addCallSite(CreateB, Wrapper, "create_b>wrap");
    SCW = P.addCallSite(CreateC, Wrapper, "create_c>wrap");
    SMalloc = P.addMallocSite(Wrapper, "wrap>malloc");
    SRender = P.addCallSite(Main, Render, "main>render");
  }

  void run(Runtime &RT) {
    std::vector<uint64_t> Hot, Cold;
    {
      Runtime::Scope Parse(RT, SParse);
      for (int I = 0; I < 3000; ++I) {
        {
          Runtime::Scope C(RT, SA);
          Runtime::Scope W(RT, SAW);
          Hot.push_back(RT.malloc(16, SMalloc));
        }
        {
          Runtime::Scope C(RT, SB);
          Runtime::Scope W(RT, SBW);
          Hot.push_back(RT.malloc(16, SMalloc));
        }
        {
          Runtime::Scope C(RT, SC);
          Runtime::Scope W(RT, SCW);
          Cold.push_back(RT.malloc(16, SMalloc));
        }
      }
    }
    {
      Runtime::Scope R(RT, SRender);
      for (int Pass = 0; Pass < 10; ++Pass)
        for (uint64_t Obj : Hot)
          RT.load(Obj, 16);
      for (uint64_t Obj : Cold)
        RT.load(Obj, 8);
    }
  }
};

HaloParameters testParams() {
  HaloParameters Params;
  Params.Grouping.MinEdgeWeight = 2;
  Params.Grouping.GroupWeightThreshold = 0.001;
  return Params;
}

} // namespace

TEST(Pipeline, FindsTheHotGroup) {
  MiniPovray M;
  HaloArtifacts Art = optimizeBinary(
      M.P, [&](Runtime &RT) { M.run(RT); }, testParams());
  ASSERT_GE(Art.Groups.size(), 1u);
  // The most popular group holds exactly the two hot contexts.
  EXPECT_EQ(Art.Groups[0].Members.size(), 2u);
  for (GraphNodeId Member : Art.Groups[0].Members) {
    const ContextInfo &Info = Art.Contexts.info(Member);
    EXPECT_TRUE(Info.chainContains(M.SA) || Info.chainContains(M.SB));
    EXPECT_FALSE(Info.chainContains(M.SC));
  }
}

TEST(Pipeline, SelectorsDiscriminateAtRuntime) {
  MiniPovray M;
  HaloArtifacts Art = optimizeBinary(
      M.P, [&](Runtime &RT) { M.run(RT); }, testParams());
  ASSERT_GE(Art.CompiledSelectors.size(), 1u);

  // Drive a runtime with the rewritten binary and check selector matching
  // along the different call paths.
  SizeClassAllocator Alloc;
  Runtime RT(M.P, Alloc);
  RT.setInstrumentation(&Art.Plan);
  const CompiledSelector &Hot = Art.CompiledSelectors[0];
  {
    Runtime::Scope Parse(RT, M.SParse);
    {
      Runtime::Scope C(RT, M.SA);
      Runtime::Scope W(RT, M.SAW);
      EXPECT_TRUE(Hot.matches(RT.groupState()));
    }
    {
      Runtime::Scope C(RT, M.SC);
      Runtime::Scope W(RT, M.SCW);
      EXPECT_FALSE(Hot.matches(RT.groupState()));
    }
    EXPECT_FALSE(Hot.matches(RT.groupState()));
  }
}

TEST(Pipeline, InstrumentsOnlyAHandfulOfSites) {
  MiniPovray M;
  HaloArtifacts Art = optimizeBinary(
      M.P, [&](Runtime &RT) { M.run(RT); }, testParams());
  EXPECT_GT(Art.Plan.numInstrumentedSites(), 0u);
  EXPECT_LE(Art.Plan.numInstrumentedSites(), 4u);
}

TEST(Pipeline, EndToEndReducesMisses) {
  MiniPovray M;
  HaloArtifacts Art = optimizeBinary(
      M.P, [&](Runtime &RT) { M.run(RT); }, testParams());

  auto MeasureMisses = [&](bool UseHalo) {
    MemoryHierarchy Mem;
    SizeClassAllocator Backing;
    Runtime RT(M.P, Backing);
    std::unique_ptr<SelectorGroupPolicy> Policy;
    std::unique_ptr<GroupAllocator> GA;
    if (UseHalo) {
      RT.setInstrumentation(&Art.Plan);
      Policy = std::make_unique<SelectorGroupPolicy>(RT.groupState(),
                                                     Art.CompiledSelectors);
      GA = std::make_unique<GroupAllocator>(Backing, *Policy);
      RT.setAllocator(*GA);
    }
    RT.setMemory(&Mem);
    M.run(RT);
    return Mem.counters().L1Misses;
  };

  uint64_t Baseline = MeasureMisses(false);
  uint64_t Halo = MeasureMisses(true);
  EXPECT_LT(Halo, Baseline); // Hot objects packed: fewer L1D misses.
}

TEST(Pipeline, GroupsAsDotMentionsEveryGroupColour) {
  MiniPovray M;
  HaloArtifacts Art = optimizeBinary(
      M.P, [&](Runtime &RT) { M.run(RT); }, testParams());
  std::string Dot = Art.groupsAsDot(M.P);
  EXPECT_NE(Dot.find("graph"), std::string::npos);
  EXPECT_NE(Dot.find("create_a"), std::string::npos);
}

TEST(Pipeline, ProfiledAccessCountsPlausible) {
  MiniPovray M;
  HaloArtifacts Art = optimizeBinary(
      M.P, [&](Runtime &RT) { M.run(RT); }, testParams());
  // 6000 hot objects * 10 passes + 3000 cold loads, as macro accesses.
  EXPECT_GT(Art.ProfiledAccesses, 60000u);
  EXPECT_LE(Art.ProfiledAccesses, 63000u);
}
