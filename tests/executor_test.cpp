//===- tests/executor_test.cpp - Shared worker pool tests --------------------===//
//
// The Executor contract every parallel stage of the measurement stack
// leans on: each index in [0, Count) runs exactly once, results land in
// their own slots (so a filled vector is bit-identical to a serial
// loop), jobs=1 degenerates to an inline serial loop on the calling
// thread, exceptions propagate to the caller without wedging the pool,
// and one pool serves many parallelFor batches.
//
//===----------------------------------------------------------------------===//

#include "support/Executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

using namespace halo;

TEST(ResolveJobs, PositiveValuesPassThrough) {
  EXPECT_EQ(resolveJobs(1), 1u);
  EXPECT_EQ(resolveJobs(7), 7u);
}

TEST(ResolveJobs, ZeroMeansHardwareConcurrencyAndNeverLessThanOne) {
  unsigned Resolved = resolveJobs(0);
  EXPECT_GE(Resolved, 1u);
  unsigned Hw = std::thread::hardware_concurrency();
  if (Hw > 0)
    EXPECT_EQ(Resolved, Hw);
}

namespace {

/// Sets HALO_JOBS for one test and restores the previous state after.
struct ScopedHaloJobs {
  explicit ScopedHaloJobs(const char *Value) {
    const char *Old = ::getenv("HALO_JOBS");
    if (Old)
      Saved = Old;
    if (Value)
      ::setenv("HALO_JOBS", Value, 1);
    else
      ::unsetenv("HALO_JOBS");
  }
  ~ScopedHaloJobs() {
    if (Saved)
      ::setenv("HALO_JOBS", Saved->c_str(), 1);
    else
      ::unsetenv("HALO_JOBS");
  }
  std::optional<std::string> Saved;
};

} // namespace

TEST(ResolveJobs, EnvFallbackUsedOnlyWhenJobsIsZero) {
  ScopedHaloJobs Env("3");
  EXPECT_EQ(resolveJobs(0), 3u);
  // An explicit request always wins over the environment.
  EXPECT_EQ(resolveJobs(2), 2u);
}

TEST(ResolveJobs, EnvZeroMeansHardwareConcurrency) {
  ScopedHaloJobs Env("0");
  EXPECT_EQ(resolveJobs(0), resolveJobs(0));
  unsigned Hw = std::thread::hardware_concurrency();
  if (Hw > 0)
    EXPECT_EQ(resolveJobs(0), Hw);
  EXPECT_GE(resolveJobs(0), 1u);
}

TEST(ResolveJobs, MalformedEnvIsAnErrorNotAGuess) {
  // Strict parse: anything but a plain decimal worker count throws, so a
  // typo'd HALO_JOBS can never silently serialise (or oversubscribe) an
  // evaluation run.
  for (const char *Bad : {"", "two", "4x", " 4", "4 ", "-1", "1e3",
                          "99999999999999999999"}) {
    ScopedHaloJobs Env(Bad);
    EXPECT_THROW(resolveJobs(0), std::invalid_argument) << "'" << Bad << "'";
    // Explicit jobs bypass the env entirely, so they still work.
    EXPECT_EQ(resolveJobs(5), 5u) << "'" << Bad << "'";
  }
}

TEST(Executor, ReportsItsWorkerCount) {
  EXPECT_EQ(Executor(1).workers(), 1u);
  EXPECT_EQ(Executor(4).workers(), 4u);
  EXPECT_EQ(Executor(0).workers(), resolveJobs(0));
}

TEST(Executor, EveryIndexRunsExactlyOnceIntoItsSlot) {
  for (int Jobs : {1, 2, 4, 8}) {
    Executor Pool(Jobs);
    std::vector<uint64_t> Slots(100, 0);
    std::vector<std::atomic<int>> Counts(100);
    Pool.parallelFor(Slots.size(), [&](size_t I) {
      Slots[I] = I * I + 1;
      Counts[I].fetch_add(1);
    });
    for (size_t I = 0; I < Slots.size(); ++I) {
      EXPECT_EQ(Slots[I], I * I + 1) << "jobs=" << Jobs << " slot " << I;
      EXPECT_EQ(Counts[I].load(), 1) << "jobs=" << Jobs << " slot " << I;
    }
  }
}

TEST(Executor, ParallelSlotsMatchSerialBitForBit) {
  auto Fill = [](Executor &Pool, std::vector<double> &Out) {
    Pool.parallelFor(Out.size(), [&](size_t I) {
      Out[I] = static_cast<double>(I) * 0.75 + 1.0 / (I + 1);
    });
  };
  Executor Serial(1), Parallel(4);
  std::vector<double> A(257), B(257);
  Fill(Serial, A);
  Fill(Parallel, B);
  EXPECT_EQ(A, B);
}

TEST(Executor, JobsOneRunsInlineOnTheCallingThread) {
  Executor Pool(1);
  const std::thread::id Caller = std::this_thread::get_id();
  bool AllInline = true;
  Pool.parallelFor(16, [&](size_t) {
    if (std::this_thread::get_id() != Caller)
      AllInline = false;
  });
  EXPECT_TRUE(AllInline);
}

TEST(Executor, CountZeroIsANoOp) {
  Executor Pool(4);
  bool Ran = false;
  Pool.parallelFor(0, [&](size_t) { Ran = true; });
  EXPECT_FALSE(Ran);
}

TEST(Executor, MoreTasksThanWorkersAndViceVersa) {
  Executor Pool(3);
  std::atomic<int> Ran{0};
  Pool.parallelFor(1000, [&](size_t) { Ran.fetch_add(1); });
  EXPECT_EQ(Ran.load(), 1000);
  Ran = 0;
  Pool.parallelFor(2, [&](size_t) { Ran.fetch_add(1); }); // Fewer than pool.
  EXPECT_EQ(Ran.load(), 2);
}

TEST(Executor, ExceptionsPropagateAndThePoolStaysUsable) {
  for (int Jobs : {1, 4}) {
    Executor Pool(Jobs);
    EXPECT_THROW(Pool.parallelFor(32,
                                  [&](size_t I) {
                                    if (I == 7)
                                      throw std::runtime_error("task 7");
                                  }),
                 std::runtime_error) << "jobs=" << Jobs;

    // The same pool must still drain a clean batch afterwards.
    std::atomic<int> Ran{0};
    Pool.parallelFor(10, [&](size_t) { Ran.fetch_add(1); });
    EXPECT_EQ(Ran.load(), 10) << "jobs=" << Jobs;
  }
}

TEST(Executor, ReusableAcrossManyBatches) {
  Executor Pool(4);
  uint64_t Total = 0;
  for (int Batch = 0; Batch < 20; ++Batch) {
    std::vector<uint64_t> Out(Batch + 1);
    Pool.parallelFor(Out.size(), [&](size_t I) { Out[I] = I + Batch; });
    Total += std::accumulate(Out.begin(), Out.end(), uint64_t(0));
  }
  EXPECT_GT(Total, 0u);
}
