//===- tests/group_allocator_test.cpp - Specialised allocator tests -----------===//

#include "core/GroupAllocator.h"
#include "mem/SizeClassAllocator.h"

#include <gtest/gtest.h>

using namespace halo;

namespace {

/// Test policy: groups by a fixed site map (like the HDS policy, but built
/// directly).
struct FixedPolicy : GroupPolicy {
  std::unordered_map<uint32_t, uint32_t> Map;
  uint32_t Groups;
  FixedPolicy(std::unordered_map<uint32_t, uint32_t> Map, uint32_t Groups)
      : Map(std::move(Map)), Groups(Groups) {}
  int32_t selectGroup(const AllocRequest &R) const override {
    auto It = Map.find(R.ImmediateSite);
    return It == Map.end() ? -1 : int32_t(It->second);
  }
  uint32_t numGroups() const override { return Groups; }
};

struct GroupAllocTest : ::testing::Test {
  SizeClassAllocator Backing{0x7000000000ull};
  FixedPolicy Policy{{{1, 0}, {2, 1}}, 2};
  GroupAllocatorOptions Options;

  GroupAllocTest() {
    Options.ChunkSize = 1 << 16; // 64 KiB chunks for compact tests.
    Options.SlabSize = 1 << 20;
  }

  AllocRequest grouped(uint64_t Size, uint32_t Site = 1) {
    return AllocRequest{Size, Site};
  }
  AllocRequest ungrouped(uint64_t Size) { return AllocRequest{Size, 99}; }
};

} // namespace

TEST_F(GroupAllocTest, GroupedAllocationsAreContiguous) {
  GroupAllocator GA(Backing, Policy, Options);
  uint64_t A = GA.allocate(grouped(24));
  uint64_t B = GA.allocate(grouped(24));
  uint64_t C = GA.allocate(grouped(40));
  // Bump allocation, 8-byte aligned, no per-object headers.
  EXPECT_EQ(B, A + 24);
  EXPECT_EQ(C, B + 24);
  EXPECT_EQ(GA.groupedAllocations(), 3u);
}

TEST_F(GroupAllocTest, MinimumAlignmentIsEight) {
  GroupAllocator GA(Backing, Policy, Options);
  uint64_t A = GA.allocate(grouped(5));
  uint64_t B = GA.allocate(grouped(5));
  EXPECT_EQ(A % 8, 0u);
  EXPECT_EQ(B, A + 8);
}

TEST_F(GroupAllocTest, GroupsUseSeparateChunks) {
  GroupAllocator GA(Backing, Policy, Options);
  uint64_t A = GA.allocate(grouped(24, 1));
  uint64_t B = GA.allocate(grouped(24, 2));
  EXPECT_NE(A & ~(Options.ChunkSize - 1), B & ~(Options.ChunkSize - 1));
}

TEST_F(GroupAllocTest, UngroupedForwardsToBacking) {
  GroupAllocator GA(Backing, Policy, Options);
  uint64_t A = GA.allocate(ungrouped(24));
  EXPECT_TRUE(Backing.owns(A));
  EXPECT_EQ(GA.forwardedAllocations(), 1u);
  GA.deallocate(A); // Routed back to the backing allocator.
  EXPECT_FALSE(Backing.owns(A));
}

TEST_F(GroupAllocTest, OversizedRequestsForwardEvenWhenGrouped) {
  GroupAllocator GA(Backing, Policy, Options);
  uint64_t A = GA.allocate(grouped(Options.MaxGroupedSize));
  EXPECT_TRUE(Backing.owns(A));
  uint64_t B = GA.allocate(grouped(Options.MaxGroupedSize - 8));
  EXPECT_FALSE(Backing.owns(B));
}

TEST_F(GroupAllocTest, ChunksAlignedToTheirSize) {
  GroupAllocator GA(Backing, Policy, Options);
  uint64_t A = GA.allocate(grouped(24));
  EXPECT_EQ((A & ~(Options.ChunkSize - 1)) % Options.ChunkSize, 0u);
}

TEST_F(GroupAllocTest, EmptyChunkRecycledThroughSpareList) {
  GroupAllocator GA(Backing, Policy, Options);
  std::vector<uint64_t> Addrs;
  // Fill one chunk and spill into a second.
  uint64_t PerChunk = Options.ChunkSize / 64;
  for (uint64_t I = 0; I < PerChunk + 4; ++I)
    Addrs.push_back(GA.allocate(grouped(64)));
  EXPECT_EQ(GA.chunkCount(), 2u);
  // Free everything in the first chunk: it becomes a spare.
  for (uint64_t I = 0; I < PerChunk; ++I)
    GA.deallocate(Addrs[I]);
  EXPECT_EQ(GA.spareChunkCount(), 1u);
  EXPECT_EQ(GA.chunkCount(), 1u);
}

TEST_F(GroupAllocTest, SpareChunkReusedBeforeNewSlabSpace) {
  GroupAllocator GA(Backing, Policy, Options);
  std::vector<uint64_t> Addrs;
  uint64_t PerChunk = Options.ChunkSize / 64;
  for (uint64_t I = 0; I < PerChunk + 4; ++I)
    Addrs.push_back(GA.allocate(grouped(64)));
  uint64_t FirstChunkBase = Addrs[0] & ~(Options.ChunkSize - 1);
  for (uint64_t I = 0; I < PerChunk; ++I)
    GA.deallocate(Addrs[I]);
  // The other group's next chunk comes from the spare list.
  uint64_t B = GA.allocate(grouped(64, 2));
  EXPECT_EQ(B & ~(Options.ChunkSize - 1), FirstChunkBase);
}

TEST_F(GroupAllocTest, PurgedChunksDropResidency) {
  Options.MaxSpareChunks = 0; // Everything beyond spares gets purged.
  GroupAllocator GA(Backing, Policy, Options);
  std::vector<uint64_t> Addrs;
  uint64_t PerChunk = Options.ChunkSize / 64;
  for (uint64_t I = 0; I < PerChunk + 4; ++I)
    Addrs.push_back(GA.allocate(grouped(64)));
  uint64_t ResidentBefore = GA.residentBytes();
  for (uint64_t I = 0; I < PerChunk; ++I)
    GA.deallocate(Addrs[I]);
  EXPECT_LT(GA.residentBytes(), ResidentBefore);
  EXPECT_EQ(GA.spareChunkCount(), 0u);
}

TEST_F(GroupAllocTest, AlwaysReuseKeepsPagesResident) {
  Options.MaxSpareChunks = 0;
  Options.PurgeEmptyChunks = false; // The omnetpp/xalanc configuration.
  GroupAllocator GA(Backing, Policy, Options);
  std::vector<uint64_t> Addrs;
  uint64_t PerChunk = Options.ChunkSize / 64;
  for (uint64_t I = 0; I < PerChunk + 4; ++I)
    Addrs.push_back(GA.allocate(grouped(64)));
  uint64_t ResidentBefore = GA.residentBytes();
  for (uint64_t I = 0; I < PerChunk; ++I)
    GA.deallocate(Addrs[I]);
  EXPECT_EQ(GA.residentBytes(), ResidentBefore); // Dirty pages kept.
}

TEST_F(GroupAllocTest, LiveRegionsGateChunkReuse) {
  GroupAllocator GA(Backing, Policy, Options);
  std::vector<uint64_t> Addrs;
  uint64_t PerChunk = Options.ChunkSize / 64;
  for (uint64_t I = 0; I < PerChunk + 4; ++I)
    Addrs.push_back(GA.allocate(grouped(64)));
  // Free all but one region of the first chunk: it must NOT be recycled.
  for (uint64_t I = 1; I < PerChunk; ++I)
    GA.deallocate(Addrs[I]);
  EXPECT_EQ(GA.spareChunkCount(), 0u);
  EXPECT_EQ(GA.chunkCount(), 2u);
  // The last region leaves: now it recycles.
  GA.deallocate(Addrs[0]);
  EXPECT_EQ(GA.spareChunkCount(), 1u);
}

TEST_F(GroupAllocTest, UsableSizeAndOwnership) {
  GroupAllocator GA(Backing, Policy, Options);
  uint64_t A = GA.allocate(grouped(24));
  EXPECT_TRUE(GA.owns(A));
  EXPECT_EQ(GA.usableSize(A), 24u);
  GA.deallocate(A);
  EXPECT_FALSE(GA.owns(A));
}

TEST_F(GroupAllocTest, LiveBytesSpanGroupedAndForwarded) {
  GroupAllocator GA(Backing, Policy, Options);
  GA.allocate(grouped(24));
  GA.allocate(ungrouped(100));
  EXPECT_EQ(GA.liveBytes(), 124u);
  EXPECT_EQ(GA.groupedLiveBytes(), 24u);
}

TEST_F(GroupAllocTest, FragmentationTracksPeakResidentVsLive) {
  GroupAllocator GA(Backing, Policy, Options);
  std::vector<uint64_t> Addrs;
  for (int I = 0; I < 64; ++I)
    Addrs.push_back(GA.allocate(grouped(64)));
  FragmentationStats F = GA.fragmentation();
  EXPECT_GT(F.PeakResident, 0u);
  EXPECT_EQ(F.LiveAtPeak, 64u * 64u);
  EXPECT_EQ(F.wastedBytes(), F.PeakResident - F.LiveAtPeak);
  EXPECT_GT(F.wastedPercent(), 0.0);
  EXPECT_LT(F.wastedPercent(), 100.0);
}

TEST_F(GroupAllocTest, PathologicalFragmentationLikeLeela) {
  // One tiny pinned region per chunk, everything else freed: nearly the
  // whole chunk is wasted (Table 1's leela row).
  GroupAllocator GA(Backing, Policy, Options);
  uint64_t PerChunk = Options.ChunkSize / 64;
  uint64_t Pinned = GA.allocate(grouped(24));
  uint64_t Prev = 0;
  for (uint64_t I = 0; I < PerChunk * 3; ++I) {
    uint64_t A = GA.allocate(grouped(64));
    if (Prev)
      GA.deallocate(Prev);
    Prev = A;
  }
  GA.deallocate(Prev);
  (void)Pinned;
  FragmentationStats F = GA.fragmentation();
  EXPECT_GT(F.wastedPercent(), 95.0);
}

TEST_F(GroupAllocTest, SelectorPolicyPicksFirstMatch) {
  GroupStateVector State(2);
  CompiledSelector S0, S1;
  S0.Masks.push_back({0b01});
  S1.Masks.push_back({0b10});
  SelectorGroupPolicy Policy(State, {S0, S1});
  EXPECT_EQ(Policy.selectGroup(AllocRequest{8, 0}), -1);
  State.set(1);
  EXPECT_EQ(Policy.selectGroup(AllocRequest{8, 0}), 1);
  State.set(0); // Both match: most popular (first) wins.
  EXPECT_EQ(Policy.selectGroup(AllocRequest{8, 0}), 0);
}

TEST_F(GroupAllocTest, SitePolicyLookups) {
  SiteGroupPolicy Policy({{5, 0}, {6, 1}}, 2);
  EXPECT_EQ(Policy.selectGroup(AllocRequest{8, 5}), 0);
  EXPECT_EQ(Policy.selectGroup(AllocRequest{8, 6}), 1);
  EXPECT_EQ(Policy.selectGroup(AllocRequest{8, 7}), -1);
  EXPECT_EQ(Policy.numGroups(), 2u);
}
