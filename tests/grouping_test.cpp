//===- tests/grouping_test.cpp - Grouping algorithm (Fig. 6-8) ----------------===//

#include "group/Grouping.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace halo;

namespace {

bool hasGroupWith(const std::vector<Group> &Groups,
                  std::vector<GraphNodeId> Members) {
  std::sort(Members.begin(), Members.end());
  for (const Group &G : Groups)
    if (G.Members == Members)
      return true;
  return false;
}

GroupingOptions lenientOptions() {
  GroupingOptions O;
  O.MinEdgeWeight = 1;
  O.GroupWeightThreshold = 0.0;
  return O;
}

} // namespace

TEST(MergeBenefit, PositiveForTightPair) {
  AffinityGraph G;
  G.addEdgeWeight(1, 2, 10);
  EXPECT_GT(mergeBenefit(G, {1}, 2, 0.05), 0.0);
}

TEST(MergeBenefit, NegativeForStranger) {
  AffinityGraph G;
  G.addEdgeWeight(1, 2, 10);
  G.addAccesses(3, 100); // No edges to 1 or 2.
  EXPECT_LT(mergeBenefit(G, {1, 2}, 3, 0.05), 0.0);
}

TEST(MergeBenefit, ToleranceAllowsSlightlyWorseMerges) {
  // Nodes 1-2 (weight 10) and candidate 3 attached with weight 9.5-ish:
  // merging drops density slightly; tolerance T makes it acceptable.
  AffinityGraph G;
  G.addEdgeWeight(1, 2, 10);
  G.addEdgeWeight(2, 3, 10);
  G.addEdgeWeight(1, 3, 9);
  // Union score: 29/3 ~ 9.667 < 10 = max(Sa, Sb): rejected at T = 0...
  EXPECT_LT(mergeBenefit(G, {1, 2}, 3, 0.0), 0.0);
  // ...but accepted at T = 5%.
  EXPECT_GT(mergeBenefit(G, {1, 2}, 3, 0.05), 0.0);
}

TEST(Grouping, PairsGroupAroundStrongestEdge) {
  AffinityGraph G;
  G.addAccesses(1, 100);
  G.addAccesses(2, 50);
  G.addEdgeWeight(1, 2, 40);
  std::vector<Group> Groups = buildGroups(G, lenientOptions());
  ASSERT_EQ(Groups.size(), 1u);
  EXPECT_TRUE(hasGroupWith(Groups, {1, 2}));
  EXPECT_EQ(Groups[0].Weight, 40u);
  EXPECT_EQ(Groups[0].Accesses, 150u);
}

TEST(Grouping, TwoSeparateClusters) {
  AffinityGraph G;
  for (GraphNodeId N = 1; N <= 4; ++N)
    G.addAccesses(N, 10);
  G.addEdgeWeight(1, 2, 50);
  G.addEdgeWeight(3, 4, 30);
  // No cross edges: two groups.
  std::vector<Group> Groups = buildGroups(G, lenientOptions());
  ASSERT_EQ(Groups.size(), 2u);
  EXPECT_TRUE(hasGroupWith(Groups, {1, 2}));
  EXPECT_TRUE(hasGroupWith(Groups, {3, 4}));
}

TEST(Grouping, TriangleFormsOneGroup) {
  AffinityGraph G;
  for (GraphNodeId N = 1; N <= 3; ++N)
    G.addAccesses(N, 10);
  G.addEdgeWeight(1, 2, 30);
  G.addEdgeWeight(2, 3, 29);
  G.addEdgeWeight(1, 3, 28);
  std::vector<Group> Groups = buildGroups(G, lenientOptions());
  ASSERT_EQ(Groups.size(), 1u);
  EXPECT_TRUE(hasGroupWith(Groups, {1, 2, 3}));
}

TEST(Grouping, WeaklyAttachedNodeLeftOut) {
  AffinityGraph G;
  for (GraphNodeId N = 1; N <= 3; ++N)
    G.addAccesses(N, 10);
  G.addEdgeWeight(1, 2, 100);
  G.addEdgeWeight(2, 3, 1); // Far too weak to join.
  std::vector<Group> Groups = buildGroups(G, lenientOptions());
  ASSERT_GE(Groups.size(), 1u);
  EXPECT_TRUE(hasGroupWith(Groups, {1, 2}));
  for (const Group &Grp : Groups)
    EXPECT_EQ(std::count(Grp.Members.begin(), Grp.Members.end(), 3), 0);
}

TEST(Grouping, MinEdgeWeightFiltersNoise) {
  AffinityGraph G;
  G.addAccesses(1, 10);
  G.addAccesses(2, 10);
  G.addEdgeWeight(1, 2, 3);
  GroupingOptions O = lenientOptions();
  O.MinEdgeWeight = 5;
  EXPECT_TRUE(buildGroups(G, O).empty());
}

TEST(Grouping, GroupWeightThresholdDropsColdGroups) {
  AffinityGraph G;
  G.addAccesses(1, 1000);
  G.addAccesses(2, 1000);
  G.addAccesses(3, 10);
  G.addAccesses(4, 10);
  G.addEdgeWeight(1, 2, 500);
  G.addEdgeWeight(3, 4, 2);
  GroupingOptions O = lenientOptions();
  O.GroupWeightThreshold = 0.01; // 1% of 2020 accesses ~ 20.
  std::vector<Group> Groups = buildGroups(G, O);
  ASSERT_EQ(Groups.size(), 1u);
  EXPECT_TRUE(hasGroupWith(Groups, {1, 2}));
}

TEST(Grouping, MaxGroupMembersRespected) {
  AffinityGraph G;
  // A clique of six nodes.
  for (GraphNodeId U = 0; U < 6; ++U) {
    G.addAccesses(U, 10);
    for (GraphNodeId V = U + 1; V < 6; ++V)
      G.addEdgeWeight(U, V, 20);
  }
  GroupingOptions O = lenientOptions();
  O.MaxGroupMembers = 3;
  std::vector<Group> Groups = buildGroups(G, O);
  for (const Group &Grp : Groups)
    EXPECT_LE(Grp.Members.size(), 3u);
}

TEST(Grouping, MaxGroupsCapsOutput) {
  AffinityGraph G;
  for (GraphNodeId N = 0; N < 8; N += 2) {
    G.addAccesses(N, 10);
    G.addAccesses(N + 1, 10);
    G.addEdgeWeight(N, N + 1, 50 + N);
  }
  GroupingOptions O = lenientOptions();
  O.MaxGroups = 2;
  EXPECT_EQ(buildGroups(G, O).size(), 2u);
}

TEST(Grouping, GroupsSortedByPopularity) {
  AffinityGraph G;
  G.addAccesses(1, 10);
  G.addAccesses(2, 10);
  G.addAccesses(3, 500);
  G.addAccesses(4, 500);
  G.addEdgeWeight(1, 2, 90); // Stronger edge, colder nodes.
  G.addEdgeWeight(3, 4, 50);
  std::vector<Group> Groups = buildGroups(G, lenientOptions());
  ASSERT_EQ(Groups.size(), 2u);
  EXPECT_EQ(Groups[0].Members, (std::vector<GraphNodeId>{3, 4}));
}

TEST(Grouping, SeedIsHotterEndpoint) {
  // With growth disabled (tiny max size), only the hotter endpoint of the
  // strongest edge forms the group.
  AffinityGraph G;
  G.addAccesses(1, 5);
  G.addAccesses(2, 50);
  G.addEdgeWeight(1, 2, 10);
  G.addEdgeWeight(2, 2, 10); // Loop so the singleton passes the threshold.
  GroupingOptions O = lenientOptions();
  O.MaxGroupMembers = 1;
  std::vector<Group> Groups = buildGroups(G, O);
  ASSERT_GE(Groups.size(), 1u);
  EXPECT_EQ(Groups[0].Members, (std::vector<GraphNodeId>{2}));
}

TEST(Grouping, EmptyGraphYieldsNoGroups) {
  AffinityGraph G;
  EXPECT_TRUE(buildGroups(G, lenientOptions()).empty());
}

TEST(Grouping, DeterministicAcrossRuns) {
  AffinityGraph G;
  for (GraphNodeId U = 0; U < 10; ++U) {
    G.addAccesses(U, 10 + U);
    for (GraphNodeId V = U + 1; V < 10; ++V)
      if ((U + V) % 3 == 0)
        G.addEdgeWeight(U, V, 10 + U * V % 17);
  }
  std::vector<Group> A = buildGroups(G, lenientOptions());
  std::vector<Group> B = buildGroups(G, lenientOptions());
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_EQ(A[I].Members, B[I].Members);
}

TEST(ComponentGroups, SplitsByConnectivity) {
  AffinityGraph G;
  for (GraphNodeId N = 1; N <= 5; ++N)
    G.addAccesses(N, 10);
  G.addEdgeWeight(1, 2, 5);
  G.addEdgeWeight(2, 3, 5);
  G.addEdgeWeight(4, 5, 5);
  std::vector<Group> Groups = buildComponentGroups(G, lenientOptions());
  ASSERT_EQ(Groups.size(), 2u);
  EXPECT_TRUE(hasGroupWith(Groups, {1, 2, 3}));
  EXPECT_TRUE(hasGroupWith(Groups, {4, 5}));
}

TEST(ComponentGroups, IgnoresSingletons) {
  AffinityGraph G;
  G.addAccesses(1, 10);
  G.addAccesses(2, 10);
  G.addAccesses(3, 10);
  G.addEdgeWeight(1, 2, 5);
  std::vector<Group> Groups = buildComponentGroups(G, lenientOptions());
  ASSERT_EQ(Groups.size(), 1u);
  EXPECT_TRUE(hasGroupWith(Groups, {1, 2}));
}
