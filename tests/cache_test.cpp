//===- tests/cache_test.cpp - Cache / TLB / hierarchy tests -------------------===//

#include "sim/MemoryHierarchy.h"
#include "sim/TimingModel.h"

#include <gtest/gtest.h>

using namespace halo;

TEST(Cache, FirstAccessMissesSecondHits) {
  Cache C(CacheConfig{1024, 2, 64});
  EXPECT_FALSE(C.access(0));
  EXPECT_TRUE(C.access(0));
  EXPECT_TRUE(C.access(63)); // Same line.
  EXPECT_FALSE(C.access(64)); // Next line.
  EXPECT_EQ(C.hits(), 2u);
  EXPECT_EQ(C.misses(), 2u);
}

TEST(Cache, LruEvictionOrder) {
  // 2-way, 64B lines, 2 sets -> set stride 128.
  Cache C(CacheConfig{256, 2, 64});
  C.access(0);   // Set 0, tag A.
  C.access(128); // Set 0, tag B.
  C.access(0);   // Touch A: B becomes LRU.
  C.access(256); // Set 0, tag C: evicts B.
  EXPECT_TRUE(C.contains(0));
  EXPECT_FALSE(C.contains(128));
  EXPECT_TRUE(C.contains(256));
}

TEST(Cache, SetsAreIndependent) {
  Cache C(CacheConfig{256, 2, 64});
  C.access(0);  // Set 0.
  C.access(64); // Set 1.
  EXPECT_TRUE(C.contains(0));
  EXPECT_TRUE(C.contains(64));
}

TEST(Cache, WorkingSetLargerThanCacheThrashes) {
  Cache C(CacheConfig{32 * 1024, 8, 64});
  // Two passes over 64 KiB: every access misses (LRU, sequential).
  for (int Pass = 0; Pass < 2; ++Pass)
    for (uint64_t Addr = 0; Addr < 64 * 1024; Addr += 64)
      C.access(Addr);
  EXPECT_EQ(C.misses(), 2048u);
  EXPECT_EQ(C.hits(), 0u);
}

TEST(Cache, WorkingSetFittingCacheHitsOnSecondPass) {
  Cache C(CacheConfig{32 * 1024, 8, 64});
  for (int Pass = 0; Pass < 2; ++Pass)
    for (uint64_t Addr = 0; Addr < 16 * 1024; Addr += 64)
      C.access(Addr);
  EXPECT_EQ(C.misses(), 256u);
  EXPECT_EQ(C.hits(), 256u);
}

TEST(Cache, ResetClearsContentsAndCounters) {
  Cache C(CacheConfig{1024, 2, 64});
  C.access(0);
  C.reset();
  EXPECT_EQ(C.accesses(), 0u);
  EXPECT_FALSE(C.contains(0));
}

TEST(Cache, NonPowerOfTwoSetCount) {
  // 25344 KiB / 11 ways / 64B lines = 36864 sets, like the W-2195 L3.
  Cache C(CacheConfig{25344 * 1024, 11, 64});
  EXPECT_EQ(C.numSets(), 36864u);
  EXPECT_FALSE(C.access(1234567));
  EXPECT_TRUE(C.access(1234567));
}

TEST(Tlb, PageGranularity) {
  Tlb T(64, 4, 4096);
  EXPECT_FALSE(T.access(0));
  EXPECT_TRUE(T.access(4095)); // Same page.
  EXPECT_FALSE(T.access(4096));
}

TEST(Tlb, CapacityEviction) {
  Tlb T(4, 4, 4096); // Fully associative, 4 entries.
  for (uint64_t P = 0; P < 5; ++P)
    T.access(P * 4096);
  EXPECT_FALSE(T.access(0)); // Evicted by the fifth page.
}

TEST(Hierarchy, LatenciesPerLevel) {
  HierarchyConfig Cfg;
  MemoryHierarchy M(Cfg);
  // Cold access: TLB miss + memory access.
  uint64_t Cold = M.access(0, 8);
  EXPECT_EQ(Cold, Cfg.Latency.TlbMiss + Cfg.Latency.Memory);
  // Hot access: L1 hit, TLB hit.
  uint64_t Hot = M.access(0, 8);
  EXPECT_EQ(Hot, Cfg.Latency.L1Hit);
}

TEST(Hierarchy, L2HitAfterL1Eviction) {
  HierarchyConfig Cfg;
  MemoryHierarchy M(Cfg);
  M.access(0, 8);
  // Page-aligned addresses all map to L1 set 0 (64 sets, 64B lines); eight
  // of them evict line 0 from L1 while leaving it in L2 and keeping page 0
  // in the TLB (pages 1..8 land in other TLB sets).
  for (uint64_t I = 1; I <= 8; ++I)
    M.access(I * 4096, 8);
  MemoryCounters Before = M.counters();
  uint64_t Cycles = M.access(0, 8);
  MemoryCounters After = M.counters();
  EXPECT_EQ(After.L1Misses, Before.L1Misses + 1);
  EXPECT_EQ(After.L2Misses, Before.L2Misses); // Served by L2.
  EXPECT_EQ(Cycles, Cfg.Latency.L2Hit);
}

TEST(Hierarchy, MultiLineAccessTouchesEachLine) {
  MemoryHierarchy M;
  M.access(0, 256); // Four lines.
  EXPECT_EQ(M.counters().Accesses, 4u);
  // Unaligned span crossing one boundary: two lines.
  M.reset();
  M.access(60, 8);
  EXPECT_EQ(M.counters().Accesses, 2u);
}

TEST(Hierarchy, ZeroSizeAccessTouchesOneLine) {
  MemoryHierarchy M;
  M.access(100, 0);
  EXPECT_EQ(M.counters().Accesses, 1u);
}

TEST(Hierarchy, StallCyclesAccumulate) {
  MemoryHierarchy M;
  M.access(0, 8);
  M.access(0, 8);
  MemoryCounters C = M.counters();
  EXPECT_EQ(C.StallCycles,
            HierarchyConfig().Latency.TlbMiss +
                HierarchyConfig().Latency.Memory +
                HierarchyConfig().Latency.L1Hit);
}

TEST(Hierarchy, ResetClearsEverything) {
  MemoryHierarchy M;
  M.access(0, 64);
  M.reset();
  MemoryCounters C = M.counters();
  EXPECT_EQ(C.Accesses, 0u);
  EXPECT_EQ(C.StallCycles, 0u);
}

TEST(Timing, AccumulatesAllBuckets) {
  TimingModel T;
  T.addCompute(100);
  T.addMemory(50);
  T.addAllocatorCall();
  T.addInstrumentationOp();
  CostModel Costs;
  EXPECT_EQ(T.totalCycles(),
            100 + 50 + Costs.AllocCall + Costs.InstrumentationOp);
  EXPECT_EQ(T.instrumentationOps(), 1u);
  EXPECT_GT(T.seconds(), 0.0);
  T.reset();
  EXPECT_EQ(T.totalCycles(), 0u);
}
