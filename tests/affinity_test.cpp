//===- tests/affinity_test.cpp - Affinity queue semantics ---------------------===//

#include "profile/AffinityQueue.h"

#include <gtest/gtest.h>

#include <set>

using namespace halo;

namespace {

/// Pushes an access and returns partner object ids.
std::set<uint32_t> partners(AffinityQueue &Q, uint32_t Obj, uint64_t Bytes,
                            uint32_t Node = 0, uint64_t Seq = 0) {
  std::set<uint32_t> Ids;
  for (const AffinityQueue::Entry &E : Q.push(Obj, Node, Seq, Bytes))
    Ids.insert(E.Object);
  return Ids;
}

} // namespace

TEST(AffinityQueue, Figure5Reproduction) {
  // Figure 5: ten objects, 4-byte accesses, A = 32. The newest element is
  // affinitive to exactly the seven entries to its left.
  AffinityQueue Q(32);
  for (uint32_t Obj = 0; Obj < 9; ++Obj)
    Q.push(Obj, 0, 0, 4);
  std::set<uint32_t> P = partners(Q, 9, 4);
  EXPECT_EQ(P.size(), 7u);
  EXPECT_EQ(P, (std::set<uint32_t>{2, 3, 4, 5, 6, 7, 8}));
}

TEST(AffinityQueue, WindowScalesWithAccessSize) {
  // 16-byte accesses with A = 32: only the immediately preceding entry is
  // within the window.
  AffinityQueue Q(32);
  Q.push(0, 0, 0, 16);
  Q.push(1, 0, 0, 16);
  std::set<uint32_t> P = partners(Q, 2, 16);
  EXPECT_EQ(P, (std::set<uint32_t>{1}));
}

TEST(AffinityQueue, DedupMergesConsecutiveAccesses) {
  AffinityQueue Q(64);
  Q.push(0, 0, 0, 4);
  Q.push(1, 0, 0, 4);
  EXPECT_FALSE(Q.lastPushMerged());
  EXPECT_TRUE(Q.push(1, 0, 0, 4).empty()); // Merged, no traversal.
  EXPECT_TRUE(Q.lastPushMerged());
  EXPECT_EQ(Q.size(), 2u);
}

TEST(AffinityQueue, MergedBytesConsumeWindow) {
  // Repeated accesses to one object widen its macro access and push older
  // entries out of the window.
  AffinityQueue Q(16);
  Q.push(0, 0, 0, 4);
  Q.push(1, 0, 0, 4);
  for (int I = 0; I < 3; ++I)
    Q.push(1, 0, 0, 4); // Entry 1 grows to 16 bytes.
  // Object 0 is now 16 bytes behind: out of the window.
  std::set<uint32_t> P = partners(Q, 2, 4);
  EXPECT_EQ(P, (std::set<uint32_t>{1}));
}

TEST(AffinityQueue, NoSelfAffinity) {
  AffinityQueue Q(64);
  Q.push(7, 0, 0, 4);
  Q.push(8, 0, 0, 4);
  std::set<uint32_t> P = partners(Q, 7, 4); // 7 again (non-consecutive).
  EXPECT_EQ(P, (std::set<uint32_t>{8}));    // Never itself.
}

TEST(AffinityQueue, NoDoubleCounting) {
  // Object 3 appears twice in the window but is reported once.
  AffinityQueue Q(64);
  Q.push(3, 0, 0, 4);
  Q.push(4, 0, 0, 4);
  Q.push(3, 0, 0, 4);
  const std::vector<AffinityQueue::Entry> &P = Q.push(5, 0, 0, 4);
  int ThreeCount = 0;
  for (const AffinityQueue::Entry &E : P)
    ThreeCount += E.Object == 3;
  EXPECT_EQ(ThreeCount, 1);
}

TEST(AffinityQueue, DoubleCountingWhenDisabled) {
  AffinityQueue Q(64, /*Dedup=*/true, /*NoDoubleCount=*/false);
  Q.push(3, 0, 0, 4);
  Q.push(4, 0, 0, 4);
  Q.push(3, 0, 0, 4);
  const std::vector<AffinityQueue::Entry> &P = Q.push(5, 0, 0, 4);
  int ThreeCount = 0;
  for (const AffinityQueue::Entry &E : P)
    ThreeCount += E.Object == 3;
  EXPECT_EQ(ThreeCount, 2);
}

TEST(AffinityQueue, DedupDisabledRetriggersTraversal) {
  AffinityQueue Q(64, /*Dedup=*/false);
  Q.push(0, 0, 0, 4);
  Q.push(1, 0, 0, 4);
  EXPECT_FALSE(Q.push(1, 0, 0, 4).empty()); // Re-traverses; sees object 0.
}

TEST(AffinityQueue, OldEntriesPruned) {
  AffinityQueue Q(16);
  for (uint32_t Obj = 0; Obj < 100; ++Obj)
    Q.push(Obj, 0, 0, 4);
  EXPECT_LE(Q.size(), 5u); // Only ~A/4 entries can remain reachable.
}

TEST(AffinityQueue, PartnerMetadataPreserved) {
  AffinityQueue Q(64);
  Q.push(1, /*Node=*/42, /*AllocSeq=*/7, 4);
  const std::vector<AffinityQueue::Entry> &P = Q.push(2, 43, 8, 4);
  ASSERT_EQ(P.size(), 1u);
  EXPECT_EQ(P[0].Object, 1u);
  EXPECT_EQ(P[0].Node, 42u);
  EXPECT_EQ(P[0].AllocSeq, 7u);
}

TEST(AffinityQueue, ZeroByteAccessCountsAsOne) {
  AffinityQueue Q(4);
  Q.push(0, 0, 0, 0);
  Q.push(1, 0, 0, 0);
  std::set<uint32_t> P = partners(Q, 2, 0);
  EXPECT_EQ(P.size(), 2u); // 1-byte entries: both within 4 bytes.
}
