//===- tests/affinity_test.cpp - Affinity queue semantics ---------------------===//

#include "profile/AffinityQueue.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

using namespace halo;

namespace {

/// Pushes an access and returns partner object ids.
std::set<uint32_t> partners(AffinityQueue &Q, uint32_t Obj, uint64_t Bytes,
                            uint32_t Node = 0, uint64_t Seq = 0) {
  std::set<uint32_t> Ids;
  for (const AffinityQueue::Entry &E : Q.push(Obj, Node, Seq, Bytes))
    Ids.insert(E.Object);
  return Ids;
}

} // namespace

TEST(AffinityQueue, Figure5Reproduction) {
  // Figure 5: ten objects, 4-byte accesses, A = 32. The newest element is
  // affinitive to exactly the seven entries to its left.
  AffinityQueue Q(32);
  for (uint32_t Obj = 0; Obj < 9; ++Obj)
    Q.push(Obj, 0, 0, 4);
  std::set<uint32_t> P = partners(Q, 9, 4);
  EXPECT_EQ(P.size(), 7u);
  EXPECT_EQ(P, (std::set<uint32_t>{2, 3, 4, 5, 6, 7, 8}));
}

TEST(AffinityQueue, WindowScalesWithAccessSize) {
  // 16-byte accesses with A = 32: only the immediately preceding entry is
  // within the window.
  AffinityQueue Q(32);
  Q.push(0, 0, 0, 16);
  Q.push(1, 0, 0, 16);
  std::set<uint32_t> P = partners(Q, 2, 16);
  EXPECT_EQ(P, (std::set<uint32_t>{1}));
}

TEST(AffinityQueue, DedupMergesConsecutiveAccesses) {
  AffinityQueue Q(64);
  Q.push(0, 0, 0, 4);
  Q.push(1, 0, 0, 4);
  EXPECT_FALSE(Q.lastPushMerged());
  EXPECT_TRUE(Q.push(1, 0, 0, 4).empty()); // Merged, no traversal.
  EXPECT_TRUE(Q.lastPushMerged());
  EXPECT_EQ(Q.size(), 2u);
}

TEST(AffinityQueue, MergedBytesConsumeWindow) {
  // Repeated accesses to one object widen its macro access and push older
  // entries out of the window.
  AffinityQueue Q(16);
  Q.push(0, 0, 0, 4);
  Q.push(1, 0, 0, 4);
  for (int I = 0; I < 3; ++I)
    Q.push(1, 0, 0, 4); // Entry 1 grows to 16 bytes.
  // Object 0 is now 16 bytes behind: out of the window.
  std::set<uint32_t> P = partners(Q, 2, 4);
  EXPECT_EQ(P, (std::set<uint32_t>{1}));
}

TEST(AffinityQueue, NoSelfAffinity) {
  AffinityQueue Q(64);
  Q.push(7, 0, 0, 4);
  Q.push(8, 0, 0, 4);
  std::set<uint32_t> P = partners(Q, 7, 4); // 7 again (non-consecutive).
  EXPECT_EQ(P, (std::set<uint32_t>{8}));    // Never itself.
}

TEST(AffinityQueue, NoDoubleCounting) {
  // Object 3 appears twice in the window but is reported once.
  AffinityQueue Q(64);
  Q.push(3, 0, 0, 4);
  Q.push(4, 0, 0, 4);
  Q.push(3, 0, 0, 4);
  const std::vector<AffinityQueue::Entry> &P = Q.push(5, 0, 0, 4);
  int ThreeCount = 0;
  for (const AffinityQueue::Entry &E : P)
    ThreeCount += E.Object == 3;
  EXPECT_EQ(ThreeCount, 1);
}

TEST(AffinityQueue, DoubleCountingWhenDisabled) {
  AffinityQueue Q(64, /*Dedup=*/true, /*NoDoubleCount=*/false);
  Q.push(3, 0, 0, 4);
  Q.push(4, 0, 0, 4);
  Q.push(3, 0, 0, 4);
  const std::vector<AffinityQueue::Entry> &P = Q.push(5, 0, 0, 4);
  int ThreeCount = 0;
  for (const AffinityQueue::Entry &E : P)
    ThreeCount += E.Object == 3;
  EXPECT_EQ(ThreeCount, 2);
}

TEST(AffinityQueue, DedupDisabledRetriggersTraversal) {
  AffinityQueue Q(64, /*Dedup=*/false);
  Q.push(0, 0, 0, 4);
  Q.push(1, 0, 0, 4);
  EXPECT_FALSE(Q.push(1, 0, 0, 4).empty()); // Re-traverses; sees object 0.
}

TEST(AffinityQueue, OldEntriesPruned) {
  AffinityQueue Q(16);
  for (uint32_t Obj = 0; Obj < 100; ++Obj)
    Q.push(Obj, 0, 0, 4);
  EXPECT_LE(Q.size(), 5u); // Only ~A/4 entries can remain reachable.
}

TEST(AffinityQueue, PartnerMetadataPreserved) {
  AffinityQueue Q(64);
  Q.push(1, /*Node=*/42, /*AllocSeq=*/7, 4);
  const std::vector<AffinityQueue::Entry> &P = Q.push(2, 43, 8, 4);
  ASSERT_EQ(P.size(), 1u);
  EXPECT_EQ(P[0].Object, 1u);
  EXPECT_EQ(P[0].Node, 42u);
  EXPECT_EQ(P[0].AllocSeq, 7u);
}

TEST(AffinityQueue, ZeroByteAccessCountsAsOne) {
  AffinityQueue Q(4);
  Q.push(0, 0, 0, 0);
  Q.push(1, 0, 0, 0);
  std::set<uint32_t> P = partners(Q, 2, 0);
  EXPECT_EQ(P.size(), 2u); // 1-byte entries: both within 4 bytes.
}

//===----------------------------------------------------------------------===//
// Zero-copy visit path (access) and the epoch-stamped dedup array.
//===----------------------------------------------------------------------===//

TEST(AffinityQueueAccess, Figure5ThroughCallback) {
  // The Figure 5 regression again, via the callback fast path: ten 4-byte
  // accesses, A = 32, the newest element sees the seven to its left.
  AffinityQueue Q(32);
  for (uint32_t Obj = 0; Obj < 9; ++Obj)
    Q.access(Obj, 0, 0, 4, [](const AffinityQueue::Entry &) {});
  std::set<uint32_t> Seen;
  bool NewAccess = Q.access(
      9, 0, 0, 4, [&](const AffinityQueue::Entry &E) { Seen.insert(E.Object); });
  EXPECT_TRUE(NewAccess);
  EXPECT_EQ(Seen, (std::set<uint32_t>{2, 3, 4, 5, 6, 7, 8}));
}

TEST(AffinityQueueAccess, MergedAccessReturnsFalseAndSkipsTraversal) {
  AffinityQueue Q(64);
  Q.access(0, 0, 0, 4, [](const AffinityQueue::Entry &) {});
  Q.access(1, 0, 0, 4, [](const AffinityQueue::Entry &) {});
  int Visits = 0;
  bool NewAccess =
      Q.access(1, 0, 0, 4, [&](const AffinityQueue::Entry &) { ++Visits; });
  EXPECT_FALSE(NewAccess);
  EXPECT_TRUE(Q.lastPushMerged());
  EXPECT_EQ(Visits, 0);
}

TEST(AffinityQueueAccess, VisitOrderIsNewestFirst) {
  AffinityQueue Q(64);
  Q.push(10, 0, 0, 4);
  Q.push(11, 0, 0, 4);
  Q.push(12, 0, 0, 4);
  std::vector<uint32_t> Order;
  Q.access(13, 0, 0, 4,
           [&](const AffinityQueue::Entry &E) { Order.push_back(E.Object); });
  EXPECT_EQ(Order, (std::vector<uint32_t>{12, 11, 10}));
}

TEST(AffinityQueueAccess, EquivalentToPushOnRandomStreams) {
  // The materialising push() and the callback access() must report the same
  // partners in the same order for any stream and any constraint toggles.
  for (bool Dedup : {true, false}) {
    for (bool NoDoubleCount : {true, false}) {
      AffinityQueue QPush(128, Dedup, NoDoubleCount);
      AffinityQueue QVisit(128, Dedup, NoDoubleCount);
      Rng Random(Dedup * 2 + NoDoubleCount + 17);
      for (int I = 0; I < 4000; ++I) {
        uint32_t Obj = static_cast<uint32_t>(Random.nextBelow(48));
        uint64_t Bytes = 1 + Random.nextBelow(40);
        std::vector<uint32_t> FromPush;
        for (const AffinityQueue::Entry &E : QPush.push(Obj, Obj % 5, I, Bytes))
          FromPush.push_back(E.Object);
        std::vector<uint32_t> FromVisit;
        bool NewAccess =
            QVisit.access(Obj, Obj % 5, I, Bytes,
                          [&](const AffinityQueue::Entry &E) {
                            FromVisit.push_back(E.Object);
                          });
        EXPECT_EQ(FromPush, FromVisit) << "step " << I;
        EXPECT_EQ(NewAccess, !QPush.lastPushMerged()) << "step " << I;
        EXPECT_EQ(QPush.size(), QVisit.size()) << "step " << I;
      }
    }
  }
}

TEST(AffinityQueueAccess, SparseObjectIdsDedupCorrectly) {
  // Large, widely spaced ids force the epoch-mark array to grow while
  // entries with smaller ids are already in the window; dedup must still
  // report each distinct object exactly once per traversal.
  AffinityQueue Q(1 << 20);
  Q.push(3, 0, 0, 4);
  Q.push(1000000, 0, 0, 4);
  Q.push(3, 0, 0, 4); // Non-consecutive duplicate.
  Q.push(7, 0, 0, 4);
  Q.push(1000000, 0, 0, 4); // Non-consecutive duplicate.
  const std::vector<AffinityQueue::Entry> &P = Q.push(2000000, 0, 0, 4);
  std::multiset<uint32_t> Objects;
  for (const AffinityQueue::Entry &E : P)
    Objects.insert(E.Object);
  EXPECT_EQ(Objects, (std::multiset<uint32_t>{3, 7, 1000000}));
}

TEST(AffinityQueueAccess, StaleMarksNeverSuppressLaterTraversals) {
  // An object reported in one traversal must be reported again in the next
  // traversal if still in the window (epochs advance; marks never persist).
  AffinityQueue Q(1024);
  Q.push(1, 0, 0, 4);
  EXPECT_EQ(Q.push(2, 0, 0, 4).size(), 1u); // Sees 1.
  EXPECT_EQ(Q.push(3, 0, 0, 4).size(), 2u); // Sees 1 and 2 again.
  EXPECT_EQ(Q.push(4, 0, 0, 4).size(), 3u); // Sees 1, 2, 3 again.
}

TEST(AffinityQueueAccess, HugeObjectIdsStayCheapAndDedupCorrectly) {
  // Ids at/above the dense mark limit (including UINT32_MAX) must neither
  // wrap the sizing arithmetic nor balloon the mark array; they dedup via
  // the per-traversal fallback list instead.
  AffinityQueue Q(64);
  Q.push(~0u, 0, 0, 4);
  const std::vector<AffinityQueue::Entry> &P = Q.push(5, 0, 0, 4);
  ASSERT_EQ(P.size(), 1u);
  EXPECT_EQ(P[0].Object, ~0u);
  EXPECT_EQ(Q.push(~0u, 0, 1, 4).size(), 1u); // And as a partner target.

  // A huge id appearing twice in one window is still reported once.
  Q.push(7, 0, 2, 4);
  Q.push(~0u, 0, 3, 4);
  int MaxCount = 0;
  for (const AffinityQueue::Entry &E : Q.push(9, 0, 4, 4))
    MaxCount += E.Object == ~0u;
  EXPECT_EQ(MaxCount, 1);
}
