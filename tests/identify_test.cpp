//===- tests/identify_test.cpp - Selector construction (Fig. 10) --------------===//

#include "identify/Identify.h"

#include <gtest/gtest.h>

using namespace halo;

namespace {

/// Builds a context table from explicit chains (each chain is a list of
/// call sites; the function id is irrelevant to identification, so frames
/// reuse the site as function id).
ContextId addContext(ContextTable &T, std::vector<CallSiteId> Sites) {
  Context C;
  for (CallSiteId S : Sites)
    C.push_back(CallFrame{S, S});
  return T.intern(C);
}

Group makeGroup(std::vector<GraphNodeId> Members, uint64_t Accesses) {
  Group G;
  G.Members = std::move(Members);
  G.Accesses = Accesses;
  G.Weight = Accesses;
  return G;
}

} // namespace

TEST(Selector, ConjunctionMatchesSubset) {
  Conjunction C;
  C.Sites = {2, 5};
  EXPECT_TRUE(C.matchesChain({1, 2, 5, 9}));
  EXPECT_FALSE(C.matchesChain({1, 2, 9}));
  EXPECT_TRUE(Conjunction().matchesChain({1})); // Empty conjunction: true.
}

TEST(Selector, DnfSemantics) {
  Selector S;
  S.Terms.push_back(Conjunction{{1}});
  S.Terms.push_back(Conjunction{{2, 3}});
  EXPECT_TRUE(S.matchesChain({1}));
  EXPECT_TRUE(S.matchesChain({2, 3}));
  EXPECT_FALSE(S.matchesChain({2}));
  EXPECT_FALSE(Selector().matchesChain({1})); // Empty DNF: false.
}

TEST(Selector, ReferencedSitesUnion) {
  Selector S;
  S.Terms.push_back(Conjunction{{3, 1}});
  S.Terms.push_back(Conjunction{{1, 7}});
  EXPECT_EQ(S.referencedSites(), (std::vector<CallSiteId>{1, 3, 7}));
}

TEST(Identify, PovrayShapeSelectors) {
  // The paper's motivating case: contexts A, B (grouped) and C share the
  // wrapper's malloc site 9; they differ in the create_* sites 1, 2, 3.
  ContextTable T;
  ContextId A = addContext(T, {0, 1, 8, 9});
  ContextId B = addContext(T, {0, 2, 8, 9});
  addContext(T, {0, 3, 8, 9}); // C: the conflicting context.
  std::vector<Group> Groups = {makeGroup({A, B}, 100)};

  IdentificationResult R = identifyGroups(Groups, T);
  ASSERT_EQ(R.Selectors.size(), 1u);
  const Selector &S = R.Selectors[0];
  // The selector accepts A and B but rejects C.
  EXPECT_TRUE(S.matchesChain(T.info(A).Chain));
  EXPECT_TRUE(S.matchesChain(T.info(B).Chain));
  EXPECT_FALSE(S.matchesChain({0, 3, 8, 9}));
  // Only the discriminating sites are instrumented -- "a small handful".
  EXPECT_EQ(R.Sites, (std::vector<CallSiteId>{1, 2}));
}

TEST(Identify, SingleMemberZeroConflicts) {
  ContextTable T;
  ContextId A = addContext(T, {1, 2});
  addContext(T, {3, 4});
  std::vector<Group> Groups = {makeGroup({A}, 10)};
  IdentificationResult R = identifyGroups(Groups, T);
  ASSERT_EQ(R.Selectors.size(), 1u);
  EXPECT_TRUE(R.Selectors[0].matchesChain(T.info(A).Chain));
  EXPECT_FALSE(R.Selectors[0].matchesChain({3, 4}));
  // One site suffices to reach zero conflicts.
  ASSERT_EQ(R.Selectors[0].Terms.size(), 1u);
  EXPECT_EQ(R.Selectors[0].Terms[0].Sites.size(), 1u);
}

TEST(Identify, MultipleConstraintsWhenSitesShared) {
  // The member shares each individual site with some conflicting context;
  // only the conjunction of two sites is unique.
  ContextTable T;
  ContextId M = addContext(T, {1, 2});
  addContext(T, {1, 3});
  addContext(T, {4, 2});
  std::vector<Group> Groups = {makeGroup({M}, 10)};
  IdentificationResult R = identifyGroups(Groups, T);
  const Selector &S = R.Selectors[0];
  EXPECT_TRUE(S.matchesChain(T.info(M).Chain));
  EXPECT_FALSE(S.matchesChain({1, 3}));
  EXPECT_FALSE(S.matchesChain({4, 2}));
  EXPECT_EQ(S.Terms[0].Sites, (std::vector<CallSiteId>{1, 2}));
}

TEST(Identify, EarlierGroupsIgnoredAsConflicts) {
  // Once a group is processed, its members stop counting as conflicts for
  // later groups (the "ignore" set in Fig. 10).
  ContextTable T;
  ContextId A = addContext(T, {1, 9});
  ContextId B = addContext(T, {2, 9});
  std::vector<Group> Groups = {makeGroup({A}, 100), makeGroup({B}, 10)};
  IdentificationResult R = identifyGroups(Groups, T);
  // B's selector faces no conflicts at all (A is ignored), so its single
  // cheapest site is enough -- even the shared site 9 would do.
  EXPECT_TRUE(R.Selectors[1].matchesChain(T.info(B).Chain));
}

TEST(Identify, AmbiguousContextsKeepBestEffortSelector) {
  // Two identical chains in different groups: conflicts can never reach
  // zero; the selector still exists (best effort, may over-match).
  ContextTable T;
  ContextId A = addContext(T, {1, 2});
  addContext(T, {1, 2, 3}); // Superset chain conflicts on every site of A.
  std::vector<Group> Groups = {makeGroup({A}, 10)};
  IdentificationResult R = identifyGroups(Groups, T);
  ASSERT_EQ(R.Selectors.size(), 1u);
  EXPECT_TRUE(R.Selectors[0].matchesChain(T.info(A).Chain));
}

TEST(Identify, CompiledSelectorMatchesStateVector) {
  ContextTable T;
  ContextId A = addContext(T, {1, 2});
  addContext(T, {1, 3});
  std::vector<Group> Groups = {makeGroup({A}, 10)};
  IdentificationResult R = identifyGroups(Groups, T);
  InstrumentationPlan Plan;
  {
    Program P;
    FunctionId F = P.addFunction("f");
    // Sites 0..4 exist in the program.
    for (int I = 0; I < 5; ++I)
      P.addMallocSite(F, "s" + std::to_string(I));
    Plan = InstrumentationPlan(P, R.Sites);
  }
  CompiledSelector C = compileSelector(R.Selectors[0], Plan);
  GroupStateVector State(Plan.numBits());
  EXPECT_FALSE(C.matches(State));
  for (CallSiteId S : R.Selectors[0].Terms[0].Sites)
    State.set(Plan.bitFor(S));
  EXPECT_TRUE(C.matches(State));
}

TEST(Identify, SitesDeduplicatedAcrossSelectors) {
  ContextTable T;
  ContextId A = addContext(T, {1, 7});
  ContextId B = addContext(T, {2, 7});
  addContext(T, {3, 7});
  std::vector<Group> Groups = {makeGroup({A}, 100), makeGroup({B}, 50)};
  IdentificationResult R = identifyGroups(Groups, T);
  // No duplicate sites in the instrumentation list.
  std::vector<CallSiteId> Sorted = R.Sites;
  std::sort(Sorted.begin(), Sorted.end());
  EXPECT_TRUE(std::adjacent_find(Sorted.begin(), Sorted.end()) ==
              Sorted.end());
}

TEST(Identify, NoGroupsNoSites) {
  ContextTable T;
  addContext(T, {1});
  IdentificationResult R = identifyGroups({}, T);
  EXPECT_TRUE(R.Selectors.empty());
  EXPECT_TRUE(R.Sites.empty());
}
