//===- tests/graph_test.cpp - Affinity graph / score tests --------------------===//

#include "graph/AffinityGraph.h"

#include <gtest/gtest.h>

using namespace halo;

TEST(Graph, EdgeWeightsAccumulateUndirected) {
  AffinityGraph G;
  G.addEdgeWeight(1, 2, 5);
  G.addEdgeWeight(2, 1, 3);
  EXPECT_EQ(G.edgeWeight(1, 2), 8u);
  EXPECT_EQ(G.edgeWeight(2, 1), 8u);
  EXPECT_EQ(G.numEdges(), 1u);
}

TEST(Graph, LoopEdgesAllowed) {
  AffinityGraph G;
  G.addEdgeWeight(4, 4, 7);
  EXPECT_EQ(G.edgeWeight(4, 4), 7u);
}

TEST(Graph, NodeAccessesAndTotal) {
  AffinityGraph G;
  G.addAccesses(1, 10);
  G.addAccesses(2, 20);
  G.addAccesses(1, 5);
  EXPECT_EQ(G.nodeAccesses(1), 15u);
  EXPECT_EQ(G.totalAccesses(), 35u);
}

TEST(Graph, EdgesCreateImplicitNodes) {
  AffinityGraph G;
  G.addEdgeWeight(1, 2, 1);
  EXPECT_TRUE(G.hasNode(1));
  EXPECT_TRUE(G.hasNode(2));
  EXPECT_EQ(G.nodeAccesses(1), 0u);
}

TEST(Graph, RemoveLightEdges) {
  AffinityGraph G;
  G.addEdgeWeight(1, 2, 10);
  G.addEdgeWeight(2, 3, 1);
  G.removeLightEdges(5);
  EXPECT_EQ(G.edgeWeight(1, 2), 10u);
  EXPECT_EQ(G.edgeWeight(2, 3), 0u);
}

TEST(Graph, ColdNodeFilterKeepsCoverage) {
  // Section 4.1: iterate hottest-first, keep until 90% of accesses covered.
  AffinityGraph G;
  G.addAccesses(1, 80);
  G.addAccesses(2, 15);
  G.addAccesses(3, 4);
  G.addAccesses(4, 1);
  G.addEdgeWeight(1, 4, 3);
  G.filterColdNodes(0.9);
  EXPECT_TRUE(G.hasNode(1));
  EXPECT_TRUE(G.hasNode(2));  // 80+15 = 95% covers the threshold.
  EXPECT_FALSE(G.hasNode(3)); // Discarded extraneous context.
  EXPECT_FALSE(G.hasNode(4));
  EXPECT_EQ(G.edgeWeight(1, 4), 0u); // Edges to dropped nodes vanish.
  EXPECT_EQ(G.totalAccesses(), 95u);
}

TEST(Graph, ColdNodeFilterFullCoverageKeepsAll) {
  AffinityGraph G;
  G.addAccesses(1, 1);
  G.addAccesses(2, 1);
  G.filterColdNodes(1.0);
  EXPECT_EQ(G.numNodes(), 2u);
}

TEST(Graph, ScoreOfPlainPair) {
  // Two nodes, one edge of weight 6: s = 6 / (0 + 1) = 6.
  AffinityGraph G;
  G.addEdgeWeight(1, 2, 6);
  EXPECT_DOUBLE_EQ(G.score({1, 2}), 6.0);
}

TEST(Graph, ScoreCountsLoopsInDenominator) {
  // Figure 7: loops contribute |L| to the denominator only when present.
  AffinityGraph G;
  G.addEdgeWeight(1, 2, 6);
  G.addEdgeWeight(1, 1, 4);
  // sum(w) = 10, |L| = 1, pairs = 1 -> 10 / 2.
  EXPECT_DOUBLE_EQ(G.score({1, 2}), 5.0);
}

TEST(Graph, ScoreSingletonWithoutLoopIsZero) {
  AffinityGraph G;
  G.addAccesses(1, 10);
  EXPECT_DOUBLE_EQ(G.score({1}), 0.0);
}

TEST(Graph, ScoreSingletonWithLoop) {
  AffinityGraph G;
  G.addEdgeWeight(1, 1, 8);
  EXPECT_DOUBLE_EQ(G.score({1}), 8.0); // 8 / (1 + 0).
}

TEST(Graph, ScoreOfTriangle) {
  AffinityGraph G;
  G.addEdgeWeight(1, 2, 3);
  G.addEdgeWeight(2, 3, 3);
  G.addEdgeWeight(1, 3, 3);
  // 9 / (0 + 3) = 3.
  EXPECT_DOUBLE_EQ(G.score({1, 2, 3}), 3.0);
}

TEST(Graph, ScoreDilutesWithDisconnectedNode) {
  AffinityGraph G;
  G.addEdgeWeight(1, 2, 6);
  G.addAccesses(3, 1);
  // 6 / (0 + 3 pairs) = 2: adding a stranger drops density.
  EXPECT_DOUBLE_EQ(G.score({1, 2, 3}), 2.0);
}

TEST(Graph, SubgraphWeightIncludesLoops) {
  AffinityGraph G;
  G.addEdgeWeight(1, 2, 5);
  G.addEdgeWeight(1, 1, 2);
  G.addEdgeWeight(2, 3, 100); // Outside the subset.
  EXPECT_EQ(G.subgraphWeight({1, 2}), 7u);
}

TEST(Graph, NodesAndEdgesDeterministicOrder) {
  AffinityGraph G;
  G.addEdgeWeight(5, 3, 1);
  G.addEdgeWeight(2, 7, 1);
  std::vector<GraphNodeId> N = G.nodes();
  EXPECT_EQ(N, (std::vector<GraphNodeId>{2, 3, 5, 7}));
  std::vector<AffinityGraph::Edge> E = G.edges();
  ASSERT_EQ(E.size(), 2u);
  EXPECT_EQ(E[0].U, 2u);
  EXPECT_EQ(E[1].U, 3u);
}

TEST(Graph, DotOutputColoursGroups) {
  AffinityGraph G;
  G.addAccesses(0, 5);
  G.addAccesses(1, 5);
  G.addEdgeWeight(0, 1, 9);
  std::string Dot =
      G.toDot({"ctxA", "ctxB"}, {0, -1}, /*MinEdgeWeight=*/0);
  EXPECT_NE(Dot.find("ctxA"), std::string::npos);
  EXPECT_NE(Dot.find("#d9d9d9"), std::string::npos); // Ungrouped grey.
  EXPECT_NE(Dot.find("--"), std::string::npos);
}

TEST(Graph, DotHidesLightEdges) {
  AffinityGraph G;
  G.addEdgeWeight(0, 1, 1);
  G.addEdgeWeight(1, 2, 100);
  std::string Dot = G.toDot({}, {}, /*MinEdgeWeight=*/50);
  EXPECT_EQ(Dot.find("\"0\" -- \"1\""), std::string::npos);
  EXPECT_NE(Dot.find("\"1\" -- \"2\""), std::string::npos);
}
