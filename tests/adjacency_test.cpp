//===- tests/adjacency_test.cpp - CSR adjacency snapshot ----------------------===//

#include "graph/Adjacency.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

using namespace halo;

namespace {

/// A small fixed graph: 1-2 (w 6), 1-3 (w 2), 2-2 loop (w 5), isolated 9.
AffinityGraph fixture() {
  AffinityGraph G;
  G.addAccesses(1, 10);
  G.addAccesses(2, 20);
  G.addAccesses(3, 5);
  G.addAccesses(9, 1);
  G.addEdgeWeight(1, 2, 6);
  G.addEdgeWeight(1, 3, 2);
  G.addEdgeWeight(2, 2, 5);
  return G;
}

AffinityGraph randomGraph(uint32_t Nodes, double EdgeProbability,
                          uint64_t Seed) {
  Rng Random(Seed);
  AffinityGraph G;
  for (uint32_t N = 0; N < Nodes; ++N) {
    G.addAccesses(N * 11 + 3, 1 + Random.nextBelow(500));
    if (Random.nextBool(0.2))
      G.addEdgeWeight(N * 11 + 3, N * 11 + 3, 1 + Random.nextBelow(50));
  }
  for (uint32_t U = 0; U < Nodes; ++U)
    for (uint32_t V = U + 1; V < Nodes; ++V)
      if (Random.nextBool(EdgeProbability))
        G.addEdgeWeight(U * 11 + 3, V * 11 + 3, 1 + Random.nextBelow(100));
  return G;
}

} // namespace

TEST(AdjacencySnapshot, DenseIdsFollowAscendingNodeIds) {
  AdjacencySnapshot Adj = fixture().buildAdjacency();
  ASSERT_EQ(Adj.numNodes(), 4u);
  EXPECT_EQ(Adj.nodeId(0), 1u);
  EXPECT_EQ(Adj.nodeId(1), 2u);
  EXPECT_EQ(Adj.nodeId(2), 3u);
  EXPECT_EQ(Adj.nodeId(3), 9u);
  EXPECT_EQ(Adj.denseOf(1), 0u);
  EXPECT_EQ(Adj.denseOf(9), 3u);
  EXPECT_EQ(Adj.denseOf(4), AdjacencySnapshot::InvalidDense);
  EXPECT_EQ(Adj.denseOf(100), AdjacencySnapshot::InvalidDense);
}

TEST(AdjacencySnapshot, NeighborSpansAndWeights) {
  AdjacencySnapshot Adj = fixture().buildAdjacency();
  // Node 1 (dense 0): neighbours 2 (dense 1, w 6) and 3 (dense 2, w 2).
  Span<uint32_t> Row = Adj.neighbors(0);
  Span<uint64_t> Weights = Adj.neighborWeights(0);
  ASSERT_EQ(Row.size(), 2u);
  EXPECT_EQ(Row[0], 1u);
  EXPECT_EQ(Row[1], 2u);
  EXPECT_EQ(Weights[0], 6u);
  EXPECT_EQ(Weights[1], 2u);
  EXPECT_EQ(Adj.degree(0), 2u);

  // Loops live in the loop array, not the neighbour rows.
  ASSERT_EQ(Adj.neighbors(1).size(), 1u);
  EXPECT_EQ(Adj.neighbors(1)[0], 0u);
  EXPECT_EQ(Adj.loopWeight(1), 5u);
  EXPECT_EQ(Adj.loopWeight(0), 0u);

  // Isolated node: empty span.
  EXPECT_TRUE(Adj.neighbors(3).empty());
  EXPECT_EQ(Adj.degree(3), 0u);
}

TEST(AdjacencySnapshot, AccessAndEdgeTotals) {
  AdjacencySnapshot Adj = fixture().buildAdjacency();
  EXPECT_EQ(Adj.totalAccesses(), 36u);
  EXPECT_EQ(Adj.numEdges(), 3u); // Two pair edges + one loop.
  EXPECT_EQ(Adj.accesses(0), 10u);
  EXPECT_EQ(Adj.accesses(1), 20u);
}

TEST(AdjacencySnapshot, DegreeOrderedIteration) {
  AdjacencySnapshot Adj = fixture().buildAdjacency();
  Span<uint32_t> Order = Adj.nodesByDegree();
  ASSERT_EQ(Order.size(), 4u);
  EXPECT_EQ(Order[0], 0u); // Node 1: degree 2.
  // Degree-1 nodes (dense 1 and 2) in index order, isolated node last.
  EXPECT_EQ(Order[1], 1u);
  EXPECT_EQ(Order[2], 2u);
  EXPECT_EQ(Order[3], 3u);
}

TEST(AdjacencySnapshot, RowsAreSortedOnRandomGraphs) {
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    AffinityGraph G = randomGraph(40, 0.2, Seed);
    AdjacencySnapshot Adj = G.buildAdjacency();
    for (uint32_t D = 0; D < Adj.numNodes(); ++D) {
      Span<uint32_t> Row = Adj.neighbors(D);
      EXPECT_TRUE(std::is_sorted(Row.begin(), Row.end()));
      for (uint32_t Nb : Row)
        EXPECT_NE(Nb, D); // Loops never appear as neighbours.
    }
  }
}

TEST(AdjacencySnapshot, MirrorsEdgeWeights) {
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    AffinityGraph G = randomGraph(30, 0.3, Seed);
    AdjacencySnapshot Adj = G.buildAdjacency();
    for (GraphNodeId U : G.nodes()) {
      uint32_t DU = Adj.denseOf(U);
      ASSERT_NE(DU, AdjacencySnapshot::InvalidDense);
      EXPECT_EQ(Adj.accesses(DU), G.nodeAccesses(U));
      EXPECT_EQ(Adj.loopWeight(DU), G.edgeWeight(U, U));
      uint64_t RowWeight = 0;
      Span<uint32_t> Row = Adj.neighbors(DU);
      Span<uint64_t> Weights = Adj.neighborWeights(DU);
      for (size_t I = 0; I < Row.size(); ++I) {
        EXPECT_EQ(Weights[I], G.edgeWeight(U, Adj.nodeId(Row[I])));
        RowWeight += Weights[I];
      }
      (void)RowWeight;
    }
  }
}

TEST(AdjacencySnapshot, ScoreMatchesGraphScore) {
  Rng Pick(77);
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    AffinityGraph G = randomGraph(30, 0.25, Seed);
    AdjacencySnapshot Adj = G.buildAdjacency();
    std::vector<GraphNodeId> All = G.nodes();
    for (int Trial = 0; Trial < 20; ++Trial) {
      std::vector<GraphNodeId> Subset;
      for (GraphNodeId N : All)
        if (Pick.nextBool(0.3))
          Subset.push_back(N);
      EXPECT_DOUBLE_EQ(Adj.score(Subset), G.score(Subset));
      EXPECT_EQ(Adj.subgraphWeight(Subset), G.subgraphWeight(Subset));
    }
    // Nodes absent from the graph still count toward the pair denominator,
    // exactly as in AffinityGraph::score.
    std::vector<GraphNodeId> WithGhosts = {All.empty() ? 0 : All[0], 100000,
                                           100001};
    EXPECT_DOUBLE_EQ(Adj.score(WithGhosts), G.score(WithGhosts));
    EXPECT_EQ(Adj.subgraphWeight(WithGhosts), G.subgraphWeight(WithGhosts));
  }
}

TEST(AdjacencySnapshot, EmptyGraph) {
  AffinityGraph G;
  AdjacencySnapshot Adj = G.buildAdjacency();
  EXPECT_EQ(Adj.numNodes(), 0u);
  EXPECT_EQ(Adj.numEdges(), 0u);
  EXPECT_EQ(Adj.totalAccesses(), 0u);
  EXPECT_TRUE(Adj.nodesByDegree().empty());
  EXPECT_DOUBLE_EQ(Adj.score({}), 0.0);
  EXPECT_EQ(Adj.subgraphWeight({}), 0u);
}

TEST(AdjacencySnapshot, SnapshotIsFrozen) {
  AffinityGraph G = fixture();
  AdjacencySnapshot Adj = G.buildAdjacency();
  G.addEdgeWeight(1, 9, 50);
  G.addAccesses(1, 1000);
  // The snapshot still reflects the graph at freeze time.
  EXPECT_EQ(Adj.degree(0), 2u);
  EXPECT_EQ(Adj.accesses(0), 10u);
  EXPECT_EQ(Adj.totalAccesses(), 36u);
}
