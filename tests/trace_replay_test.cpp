//===- tests/trace_replay_test.cpp - Record/replay equivalence ---------------===//
//
// The record-once/replay-many contract: an EventTrace recorded from one
// workload run, replayed on a fresh runtime under *any* allocator
// configuration, must produce RunMetrics bit-identical to executing the
// workload directly under that configuration. Direct execution stays in
// the tree (Evaluation::measureDirect) purely as the oracle these tests
// compare against.
//
//===----------------------------------------------------------------------===//

#include "eval/Evaluation.h"
#include "mem/BoundaryTagAllocator.h"
#include "mem/SizeClassAllocator.h"
#include "trace/EventTrace.h"

#include <gtest/gtest.h>

#include <tuple>

using namespace halo;

namespace {

const AllocatorKind AllKinds[] = {
    AllocatorKind::Jemalloc,     AllocatorKind::Ptmalloc,
    AllocatorKind::Halo,         AllocatorKind::Hds,
    AllocatorKind::RandomPools,  AllocatorKind::HaloInstrumentedOnly,
};

const char *kindName(AllocatorKind Kind) {
  switch (Kind) {
  case AllocatorKind::Jemalloc:
    return "jemalloc";
  case AllocatorKind::Ptmalloc:
    return "ptmalloc";
  case AllocatorKind::Halo:
    return "halo";
  case AllocatorKind::Hds:
    return "hds";
  case AllocatorKind::RandomPools:
    return "random-pools";
  case AllocatorKind::HaloInstrumentedOnly:
    return "halo-instrumented-only";
  }
  return "?";
}

/// Field-by-field bit-identity of everything a run measures.
void expectSameMetrics(const RunMetrics &Direct, const RunMetrics &Replayed,
                       const std::string &Where) {
  SCOPED_TRACE(Where);
  EXPECT_EQ(Direct.Cycles, Replayed.Cycles);
  EXPECT_DOUBLE_EQ(Direct.Seconds, Replayed.Seconds);
  EXPECT_EQ(Direct.Mem.Accesses, Replayed.Mem.Accesses);
  EXPECT_EQ(Direct.Mem.L1Misses, Replayed.Mem.L1Misses);
  EXPECT_EQ(Direct.Mem.L2Misses, Replayed.Mem.L2Misses);
  EXPECT_EQ(Direct.Mem.L3Misses, Replayed.Mem.L3Misses);
  EXPECT_EQ(Direct.Mem.TlbMisses, Replayed.Mem.TlbMisses);
  EXPECT_EQ(Direct.Mem.StallCycles, Replayed.Mem.StallCycles);
  EXPECT_EQ(Direct.Events.Calls, Replayed.Events.Calls);
  EXPECT_EQ(Direct.Events.Allocs, Replayed.Events.Allocs);
  EXPECT_EQ(Direct.Events.Frees, Replayed.Events.Frees);
  EXPECT_EQ(Direct.Events.Loads, Replayed.Events.Loads);
  EXPECT_EQ(Direct.Events.Stores, Replayed.Events.Stores);
  EXPECT_EQ(Direct.InstrumentationOps, Replayed.InstrumentationOps);
  EXPECT_EQ(Direct.Frag.PeakResident, Replayed.Frag.PeakResident);
  EXPECT_EQ(Direct.Frag.LiveAtPeak, Replayed.Frag.LiveAtPeak);
  EXPECT_EQ(Direct.GroupedAllocs, Replayed.GroupedAllocs);
  EXPECT_EQ(Direct.ForwardedAllocs, Replayed.ForwardedAllocs);
}

class TraceReplayTest : public ::testing::TestWithParam<std::string> {};

} // namespace

TEST_P(TraceReplayTest, ReplayMatchesDirectExecutionUnderEveryAllocator) {
  Evaluation Eval(paperSetup(GetParam()));
  for (AllocatorKind Kind : AllKinds) {
    RunMetrics Direct = Eval.measureDirect(Kind, Scale::Test, 7);
    RunMetrics Replayed = Eval.measure(Kind, Scale::Test, 7);
    expectSameMetrics(Direct, Replayed,
                      GetParam() + " under " + kindName(Kind));
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, TraceReplayTest,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &Info) { return Info.param; });

TEST(TraceReplay, CountsMatchTheRecordedRunsStats) {
  auto W = createWorkload("health");
  Program P;
  W->build(P);

  EventTrace Trace;
  SizeClassAllocator Alloc;
  Runtime RT(P, Alloc);
  TraceRecorder Recorder(Trace);
  RT.addObserver(&Recorder);
  W->run(RT, Scale::Test, 5);

  const TraceCounts &C = Trace.counts();
  const RuntimeStats &S = RT.stats();
  EXPECT_EQ(C.Calls, S.Calls);
  EXPECT_EQ(C.Returns, S.Calls); // Every Scope that enters leaves.
  EXPECT_EQ(C.Allocs + C.Reallocs, S.Allocs);
  EXPECT_EQ(C.Loads + C.RawLoads, S.Loads);
  EXPECT_EQ(C.Stores + C.RawStores, S.Stores);
  EXPECT_EQ(Trace.numObjects(), S.Allocs);
  EXPECT_GT(Trace.numEvents(), 0u);
  EXPECT_GT(Trace.byteSize(), 0u);
  // The encoding stays compact: a handful of bytes per event.
  EXPECT_LT(Trace.byteSize(), Trace.numEvents() * 8);
}

TEST(TraceReplay, ReallocCallocAndRawAccessesRoundTrip) {
  // A hand-driven program exercising the paths no workload model hits:
  // calloc's zeroing stores, realloc's allocator-dependent copy loop (the
  // usable size under a boundary-tag allocator differs from the recording
  // allocator's size class), and raw non-heap accesses.
  Program P;
  FunctionId Main = P.addFunction("main");
  CallSiteId Site = P.addMallocSite(Main, "main>malloc");
  auto Drive = [&](Runtime &RT) {
    uint64_t A = RT.malloc(40, Site);
    RT.store(A, 40);
    uint64_t B = RT.calloc(8, 16, Site);
    RT.load(B, 128);
    A = RT.realloc(A, 200, Site); // Copies min(usableSize(A), 200) bytes.
    RT.store(A + 64, 8);
    A = RT.realloc(A, 16, Site); // Shrinking copies only 16 bytes.
    RT.load(0x1234, 8);          // Stack/global traffic: recorded raw.
    RT.compute(500);
    RT.free(A);
    RT.free(B);
    RT.free(0); // free(NULL) is a no-op and must not enter the trace.
  };

  EventTrace Trace;
  {
    SizeClassAllocator RecordAlloc;
    Runtime RT(P, RecordAlloc);
    TraceRecorder Recorder(Trace);
    RT.addObserver(&Recorder);
    Drive(RT);
  }
  EXPECT_EQ(Trace.counts().Reallocs, 2u);
  EXPECT_EQ(Trace.counts().Allocs, 2u);
  EXPECT_EQ(Trace.counts().RawLoads, 1u);
  EXPECT_EQ(Trace.counts().Computes, 1u);
  EXPECT_EQ(Trace.numObjects(), 4u);

  // Direct vs replayed under an allocator with different usable sizes.
  auto Measure = [&](bool Replay) {
    MemoryHierarchy Memory;
    BoundaryTagAllocator Ptmalloc;
    Runtime RT(P, Ptmalloc);
    RT.setMemory(&Memory);
    if (Replay)
      RT.replay(Trace);
    else
      Drive(RT);
    return std::make_tuple(RT.timing().totalCycles(), RT.stats().Loads,
                           RT.stats().Stores, RT.stats().Allocs,
                           RT.stats().Frees, Memory.counters().L1Misses,
                           Memory.counters().Accesses);
  };
  EXPECT_EQ(Measure(false), Measure(true));
}

TEST(TraceReplay, PipelineFromTraceMatchesDirectProfiling) {
  auto W = createWorkload("povray");
  Program P;
  W->build(P);
  auto Run = [&](Runtime &RT) { W->run(RT, Scale::Test, 1); };

  EventTrace Trace;
  {
    SizeClassAllocator RecordAlloc;
    Runtime RT(P, RecordAlloc);
    TraceRecorder Recorder(Trace);
    RT.addObserver(&Recorder);
    Run(RT);
  }

  HaloArtifacts Direct = optimizeBinary(P, Run);
  HaloArtifacts Replayed = optimizeBinary(P, Trace);
  EXPECT_EQ(Direct.ProfiledAccesses, Replayed.ProfiledAccesses);
  EXPECT_EQ(Direct.Plan.sites(), Replayed.Plan.sites());
  ASSERT_EQ(Direct.Groups.size(), Replayed.Groups.size());
  for (size_t G = 0; G < Direct.Groups.size(); ++G) {
    EXPECT_EQ(Direct.Groups[G].Members, Replayed.Groups[G].Members);
    EXPECT_EQ(Direct.Groups[G].Weight, Replayed.Groups[G].Weight);
  }

  HdsArtifacts HdsDirect = optimizeBinaryHds(P, Run);
  HdsArtifacts HdsReplayed = optimizeBinaryHds(P, Trace);
  EXPECT_EQ(HdsDirect.SiteToGroup, HdsReplayed.SiteToGroup);
  EXPECT_EQ(HdsDirect.Groups.size(), HdsReplayed.Groups.size());
}

TEST(TraceReplay, CursorChunkDecodeMatchesReaderDecode) {
  // The chunked batch decoder must produce exactly the records the
  // sequential reader does, across chunk boundaries of any size.
  auto W = createWorkload("health");
  Program P;
  W->build(P);
  EventTrace Trace;
  {
    RecordingArena Arena;
    Runtime RT(P, Arena);
    TraceRecorder Recorder(Trace, Arena);
    RT.addObserver(&Recorder);
    W->run(RT, Scale::Test, 3);
  }

  for (size_t ChunkSize : {1u, 7u, 1024u}) {
    SCOPED_TRACE("chunk " + std::to_string(ChunkSize));
    EventTrace::Reader R = Trace.reader();
    EventTrace::Cursor Cur = Trace.cursor();
    std::vector<TraceEvent> Chunk(ChunkSize);
    uint64_t Total = 0;
    while (size_t N = Cur.fill(Chunk.data(), ChunkSize)) {
      for (size_t I = 0; I < N; ++I) {
        ASSERT_FALSE(R.atEnd());
        TraceOp Op = R.op();
        ASSERT_EQ(Chunk[I].Op, Op);
        switch (Op) {
        case TraceOp::Return:
          break;
        case TraceOp::Call:
        case TraceOp::Free:
        case TraceOp::Compute:
          EXPECT_EQ(Chunk[I].A, R.varint());
          break;
        case TraceOp::Alloc:
        case TraceOp::LoadBase:
        case TraceOp::StoreBase:
        case TraceOp::LoadRaw:
        case TraceOp::StoreRaw:
          EXPECT_EQ(Chunk[I].A, R.varint());
          EXPECT_EQ(Chunk[I].B, R.varint());
          break;
        case TraceOp::Load:
        case TraceOp::Store:
        case TraceOp::Realloc:
          EXPECT_EQ(Chunk[I].A, R.varint());
          EXPECT_EQ(Chunk[I].B, R.varint());
          EXPECT_EQ(Chunk[I].C, R.varint());
          break;
        }
        ++Total;
      }
    }
    EXPECT_TRUE(R.atEnd());
    EXPECT_TRUE(Cur.atEnd());
    EXPECT_EQ(Total, Trace.numEvents());
  }
}

TEST(TraceReplay, ObservedReplayDeliversBatchesInRecordingOrder) {
  // An observer attached to a replaying runtime must see every event in
  // recording order, with access runs arriving through onAccessBatch.
  // The interleaved event sequence (not just totals) is compared against
  // a straight decode of the trace, so a dropped Strict flush -- which
  // would reorder accesses against calls/computes while keeping every
  // count intact -- fails here.
  auto W = createWorkload("ft");
  Program P;
  W->build(P);
  EventTrace Trace;
  {
    RecordingArena Arena;
    Runtime RT(P, Arena);
    TraceRecorder Recorder(Trace, Arena);
    RT.addObserver(&Recorder);
    W->run(RT, Scale::Test, 2);
  }

  // One token per observable event, in delivery order; access batches
  // flatten to one token per access (with the store flag).
  struct SequenceObserver final : RuntimeObserver {
    std::vector<std::pair<char, uint64_t>> Seq;
    uint64_t Batches = 0;
    void onCall(CallSiteId Site) override { Seq.emplace_back('C', Site); }
    void onReturn(CallSiteId) override { Seq.emplace_back('R', 0); }
    void onAlloc(uint64_t, uint64_t Size, CallSiteId) override {
      Seq.emplace_back('M', Size);
    }
    void onFree(uint64_t) override { Seq.emplace_back('F', 0); }
    void onCompute(uint64_t Cycles) override { Seq.emplace_back('P', Cycles); }
    void onAccessBatch(const MemAccess *Batch, size_t N) override {
      ++Batches;
      for (size_t I = 0; I < N; ++I)
        Seq.emplace_back(Batch[I].IsStore ? 'S' : 'L', Batch[I].Size);
    }
  };

  SizeClassAllocator Alloc;
  Runtime RT(P, Alloc);
  SequenceObserver Obs;
  RT.addObserver(&Obs);
  RT.replay(Trace);

  // Expected sequence: the trace decoded in recording order. ft has no
  // reallocs at this scale, so every record maps to exactly one token.
  ASSERT_EQ(Trace.counts().Reallocs, 0u);
  std::vector<std::pair<char, uint64_t>> Expected;
  EventTrace::Reader R = Trace.reader();
  while (!R.atEnd()) {
    switch (R.op()) {
    case TraceOp::Call:
      Expected.emplace_back('C', R.varint());
      break;
    case TraceOp::Return:
      Expected.emplace_back('R', 0);
      break;
    case TraceOp::Alloc:
      R.varint(); // site
      Expected.emplace_back('M', R.varint());
      break;
    case TraceOp::Free:
      R.varint();
      Expected.emplace_back('F', 0);
      break;
    case TraceOp::Load:
      R.varint();
      R.varint();
      Expected.emplace_back('L', R.varint());
      break;
    case TraceOp::Store:
      R.varint();
      R.varint();
      Expected.emplace_back('S', R.varint());
      break;
    case TraceOp::LoadBase:
      R.varint();
      Expected.emplace_back('L', R.varint());
      break;
    case TraceOp::StoreBase:
      R.varint();
      Expected.emplace_back('S', R.varint());
      break;
    case TraceOp::LoadRaw:
      R.varint();
      Expected.emplace_back('L', R.varint());
      break;
    case TraceOp::StoreRaw:
      R.varint();
      Expected.emplace_back('S', R.varint());
      break;
    case TraceOp::Compute:
      Expected.emplace_back('P', R.varint());
      break;
    case TraceOp::Realloc:
      FAIL() << "unexpected realloc in the ft trace";
      break;
    }
  }
  EXPECT_EQ(Obs.Seq, Expected);
  EXPECT_GT(Obs.Batches, 0u);
}

TEST(TraceReplay, TraceCacheRecordsOncePerScaleAndSeed) {
  Evaluation Eval(paperSetup("ft"));
  const EventTrace &First = Eval.trace(Scale::Test, 9);
  const EventTrace &Second = Eval.trace(Scale::Test, 9);
  EXPECT_EQ(&First, &Second); // Same buffer, not a re-recording.
  const EventTrace &OtherSeed = Eval.trace(Scale::Test, 10);
  EXPECT_NE(&First, &OtherSeed);
}

TEST(TraceReplay, ParallelTrialsMatchSerialTrials) {
  Evaluation Eval(paperSetup("ft"));
  auto Serial =
      Eval.measureTrials(AllocatorKind::Jemalloc, Scale::Test, 6, 100,
                         /*Jobs=*/1);
  auto Parallel =
      Eval.measureTrials(AllocatorKind::Jemalloc, Scale::Test, 6, 100,
                         /*Jobs=*/4);
  ASSERT_EQ(Serial.size(), Parallel.size());
  for (size_t T = 0; T < Serial.size(); ++T)
    expectSameMetrics(Serial[T], Parallel[T],
                      "trial " + std::to_string(T));
  EXPECT_DOUBLE_EQ(Evaluation::medianSeconds(Serial),
                   Evaluation::medianSeconds(Parallel));
  EXPECT_DOUBLE_EQ(Evaluation::medianL1Misses(Serial),
                   Evaluation::medianL1Misses(Parallel));

  // The grouped kinds exercise artifact materialisation before fan-out.
  auto HaloSerial =
      Eval.measureTrials(AllocatorKind::Halo, Scale::Test, 4, 100,
                         /*Jobs=*/1);
  auto HaloParallel =
      Eval.measureTrials(AllocatorKind::Halo, Scale::Test, 4, 100,
                         /*Jobs=*/4);
  for (size_t T = 0; T < HaloSerial.size(); ++T)
    expectSameMetrics(HaloSerial[T], HaloParallel[T],
                      "halo trial " + std::to_string(T));
}
