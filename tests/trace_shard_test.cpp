//===- tests/trace_shard_test.cpp - Sharded replay == serial replay ----------===//
//
// The fourth equivalence contract (README.md, "sharded = serial"):
// shardedReplay must produce stats, timing, and hierarchy counters
// bit-identical to Runtime::replay on one thread -- for every workload,
// every allocator kind, every shard count, and every edge the shard
// planner can cut (a boundary landing next to a composite realloc, more
// shards than records, traces too small to cut at all). The fallback
// conditions (observers attached, warmed hierarchy, no hierarchy) must
// degrade to a plain serial replay rather than diverge.
//
//===----------------------------------------------------------------------===//

#include "eval/Evaluation.h"
#include "eval/Experiment.h"
#include "mem/BoundaryTagAllocator.h"
#include "mem/SizeClassAllocator.h"
#include "runtime/ShardedReplay.h"
#include "support/Executor.h"
#include "trace/EventTrace.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

using namespace halo;

namespace {

const AllocatorKind AllKinds[] = {
    AllocatorKind::Jemalloc,     AllocatorKind::Ptmalloc,
    AllocatorKind::Halo,         AllocatorKind::Hds,
    AllocatorKind::RandomPools,  AllocatorKind::HaloInstrumentedOnly,
};

/// Field-by-field bit-identity of everything a run measures (the same
/// check trace_replay_test applies to record/replay).
void expectSameMetrics(const RunMetrics &Serial, const RunMetrics &Sharded,
                       const std::string &Where) {
  SCOPED_TRACE(Where);
  EXPECT_EQ(Serial.Cycles, Sharded.Cycles);
  EXPECT_DOUBLE_EQ(Serial.Seconds, Sharded.Seconds);
  EXPECT_EQ(Serial.Mem.Accesses, Sharded.Mem.Accesses);
  EXPECT_EQ(Serial.Mem.L1Misses, Sharded.Mem.L1Misses);
  EXPECT_EQ(Serial.Mem.L2Misses, Sharded.Mem.L2Misses);
  EXPECT_EQ(Serial.Mem.L3Misses, Sharded.Mem.L3Misses);
  EXPECT_EQ(Serial.Mem.TlbMisses, Sharded.Mem.TlbMisses);
  EXPECT_EQ(Serial.Mem.StallCycles, Sharded.Mem.StallCycles);
  EXPECT_EQ(Serial.Events.Calls, Sharded.Events.Calls);
  EXPECT_EQ(Serial.Events.Allocs, Sharded.Events.Allocs);
  EXPECT_EQ(Serial.Events.Frees, Sharded.Events.Frees);
  EXPECT_EQ(Serial.Events.Loads, Sharded.Events.Loads);
  EXPECT_EQ(Serial.Events.Stores, Sharded.Events.Stores);
  EXPECT_EQ(Serial.InstrumentationOps, Sharded.InstrumentationOps);
  EXPECT_EQ(Serial.Frag.PeakResident, Sharded.Frag.PeakResident);
  EXPECT_EQ(Serial.Frag.LiveAtPeak, Sharded.Frag.LiveAtPeak);
  EXPECT_EQ(Serial.GroupedAllocs, Sharded.GroupedAllocs);
  EXPECT_EQ(Serial.ForwardedAllocs, Sharded.ForwardedAllocs);
}

/// Everything a Runtime-level replay can differ in: timing, event stats,
/// and the full hierarchy counter block.
using ReplaySnapshot =
    std::tuple<uint64_t, uint64_t, uint64_t, uint64_t, uint64_t, uint64_t,
               uint64_t, uint64_t, uint64_t, uint64_t, uint64_t, uint64_t>;

ReplaySnapshot snapshot(const Runtime &RT, const MemoryHierarchy &Memory) {
  const RuntimeStats &S = RT.stats();
  const MemoryCounters C = Memory.counters();
  return ReplaySnapshot{RT.timing().totalCycles(),
                        S.Calls,
                        S.Allocs,
                        S.Frees,
                        S.Loads,
                        S.Stores,
                        C.Accesses,
                        C.L1Misses,
                        C.L2Misses,
                        C.L3Misses,
                        C.TlbMisses,
                        C.StallCycles};
}

/// Serial oracle: plain Runtime::replay on a fresh runtime + hierarchy.
ReplaySnapshot replaySerial(Program &P, const EventTrace &Trace) {
  MemoryHierarchy Memory;
  BoundaryTagAllocator Alloc;
  Runtime RT(P, Alloc);
  RT.setMemory(&Memory);
  RT.replay(Trace);
  return snapshot(RT, Memory);
}

/// Sharded run on an equally fresh runtime + hierarchy.
ReplaySnapshot replaySharded(Program &P, const EventTrace &Trace, int Jobs,
                             size_t NumShards = 0) {
  MemoryHierarchy Memory;
  BoundaryTagAllocator Alloc;
  Runtime RT(P, Alloc);
  RT.setMemory(&Memory);
  Executor Pool(Jobs);
  shardedReplay(RT, Trace, Pool, NumShards);
  return snapshot(RT, Memory);
}

/// Records \p Drive under the size-class recording allocator (the same
/// recording setup Evaluation uses).
template <typename DriveFn>
EventTrace record(Program &P, DriveFn &&Drive) {
  EventTrace Trace;
  SizeClassAllocator RecordAlloc;
  Runtime RT(P, RecordAlloc);
  TraceRecorder Recorder(Trace);
  RT.addObserver(&Recorder);
  Drive(RT);
  return Trace;
}

class TraceShardTest : public ::testing::TestWithParam<std::string> {};

} // namespace

TEST_P(TraceShardTest, ShardedMeasurementMatchesSerialUnderEveryAllocator) {
  // The full measurement path: Evaluation::measure with a shard pool must
  // equal the serial measure for every allocator kind -- including the
  // grouped kinds whose replay threads group state through the allocator.
  Evaluation Eval(paperSetup(GetParam()));
  Executor Pool(3);
  for (AllocatorKind Kind : AllKinds) {
    RunMetrics Serial = Eval.measure(Kind, Scale::Test, 7);
    RunMetrics Sharded =
        Eval.measure(Eval.setup().Machine, Kind, Scale::Test, 7, &Pool);
    expectSameMetrics(Serial, Sharded,
                      GetParam() + " under " +
                          std::string(allocatorKindName(Kind)));
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, TraceShardTest,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &Info) { return Info.param; });

TEST(TraceShard, EveryShardCountMatchesSerial) {
  // Shard-count sweep on one workload: even cuts, uneven cuts, a prime
  // count, and far more shards than the pool has workers.
  auto W = createWorkload("health");
  Program P;
  W->build(P);
  EventTrace Trace = record(P, [&](Runtime &RT) {
    W->run(RT, Scale::Test, 11);
  });

  ReplaySnapshot Serial = replaySerial(P, Trace);
  for (size_t Shards : {2u, 3u, 7u, 16u, 61u})
    EXPECT_EQ(Serial, replaySharded(P, Trace, /*Jobs=*/4, Shards))
        << "shards=" << Shards;
}

TEST(TraceShard, BoundaryNextToReallocComposite) {
  // A trace that is almost entirely composite realloc records (each one
  // expands into an allocator-dependent copy loop at replay time). With
  // one shard per record, every shard boundary lands immediately before
  // or after a composite, and the prepass-captured copy lengths must line
  // up with the records shard by shard.
  Program P;
  FunctionId Main = P.addFunction("main");
  CallSiteId Site = P.addMallocSite(Main, "main>malloc");
  EventTrace Trace = record(P, [&](Runtime &RT) {
    uint64_t A = RT.malloc(40, Site);
    uint64_t B = RT.calloc(8, 16, Site);
    for (uint64_t Size = 16; Size <= 4096; Size *= 2) {
      A = RT.realloc(A, Size, Site);      // Growing copy.
      B = RT.realloc(B, 4096 / Size, Site); // Shrinking copy.
      RT.store(A, 8);
    }
    RT.free(A);
    RT.free(B);
  });
  ASSERT_GT(Trace.counts().Reallocs, 10u);

  ReplaySnapshot Serial = replaySerial(P, Trace);
  // More shards than records: the planner caps at one record per shard.
  for (size_t Shards : {2u, 5u, 1000u})
    EXPECT_EQ(Serial, replaySharded(P, Trace, /*Jobs=*/4, Shards))
        << "shards=" << Shards;
}

TEST(TraceShard, TinyTracesDegradeToSerial) {
  Program P;
  FunctionId Main = P.addFunction("main");
  CallSiteId Site = P.addMallocSite(Main, "main>malloc");

  // Empty trace.
  EventTrace Empty = record(P, [&](Runtime &) {});
  EXPECT_EQ(replaySerial(P, Empty), replaySharded(P, Empty, /*Jobs=*/4));

  // One record.
  EventTrace One = record(P, [&](Runtime &RT) { RT.compute(5); });
  EXPECT_EQ(replaySerial(P, One), replaySharded(P, One, /*Jobs=*/4, 64));

  // A couple of records, fewer than any useful shard count.
  EventTrace Few = record(P, [&](Runtime &RT) {
    uint64_t A = RT.malloc(64, Site);
    RT.store(A, 64);
    RT.free(A);
  });
  EXPECT_EQ(replaySerial(P, Few), replaySharded(P, Few, /*Jobs=*/4, 64));
}

TEST(TraceShard, ObservedRuntimeFallsBackToSerialReplay) {
  // Observers need order-strict delivery, so shardedReplay must take the
  // serial path: same counters AND the observer sees every event.
  auto W = createWorkload("ft");
  Program P;
  W->build(P);
  EventTrace Trace = record(P, [&](Runtime &RT) {
    W->run(RT, Scale::Test, 2);
  });

  struct CountingObserver final : RuntimeObserver {
    uint64_t Events = 0;
    void onCall(CallSiteId) override { ++Events; }
    void onReturn(CallSiteId) override { ++Events; }
    void onAlloc(uint64_t, uint64_t, CallSiteId) override { ++Events; }
    void onFree(uint64_t) override { ++Events; }
    void onCompute(uint64_t) override { ++Events; }
    void onAccessBatch(const MemAccess *, size_t N) override { Events += N; }
  };

  MemoryHierarchy Memory;
  BoundaryTagAllocator Alloc;
  Runtime RT(P, Alloc);
  RT.setMemory(&Memory);
  CountingObserver Obs;
  RT.addObserver(&Obs);
  Executor Pool(4);
  shardedReplay(RT, Trace, Pool);
  EXPECT_EQ(snapshot(RT, Memory), replaySerial(P, Trace));
  EXPECT_GT(Obs.Events, 0u);
}

TEST(TraceShard, WarmedHierarchyFallsBackToSerialReplay) {
  // The stitch assumes a cold L1/TLB; a hierarchy that already served
  // accesses must route through the serial path and still match a serial
  // replay over the same warmed state.
  auto W = createWorkload("health");
  Program P;
  W->build(P);
  EventTrace Trace = record(P, [&](Runtime &RT) {
    W->run(RT, Scale::Test, 3);
  });

  auto Warmed = [&](bool Sharded) {
    MemoryHierarchy Memory;
    for (uint64_t A = 0; A < 4096; A += 64)
      Memory.access(A, 8);
    BoundaryTagAllocator Alloc;
    Runtime RT(P, Alloc);
    RT.setMemory(&Memory);
    if (Sharded) {
      Executor Pool(4);
      shardedReplay(RT, Trace, Pool);
    } else {
      RT.replay(Trace);
    }
    return snapshot(RT, Memory);
  };
  EXPECT_EQ(Warmed(false), Warmed(true));
}

TEST(TraceShard, NoHierarchyFallsBackToSerialReplay) {
  // Without a hierarchy there is nothing to shard; stats and timing must
  // still come out identical to RT.replay.
  auto W = createWorkload("ft");
  Program P;
  W->build(P);
  EventTrace Trace = record(P, [&](Runtime &RT) {
    W->run(RT, Scale::Test, 2);
  });

  auto Bare = [&](bool Sharded) {
    BoundaryTagAllocator Alloc;
    Runtime RT(P, Alloc);
    if (Sharded) {
      Executor Pool(4);
      shardedReplay(RT, Trace, Pool);
    } else {
      RT.replay(Trace);
    }
    const RuntimeStats &S = RT.stats();
    return std::make_tuple(RT.timing().totalCycles(), S.Calls, S.Allocs,
                           S.Frees, S.Loads, S.Stores);
  };
  EXPECT_EQ(Bare(false), Bare(true));
}

TEST(TraceShard, ReplayModeNamesRoundTrip) {
  for (ReplayMode Mode :
       {ReplayMode::Auto, ReplayMode::Serial, ReplayMode::Sharded}) {
    ReplayMode Parsed;
    ASSERT_TRUE(parseReplayMode(replayModeName(Mode), Parsed));
    EXPECT_EQ(Mode, Parsed);
  }
  ReplayMode Parsed;
  EXPECT_FALSE(parseReplayMode("", Parsed));
  EXPECT_FALSE(parseReplayMode("parallel", Parsed));
  EXPECT_FALSE(parseReplayMode("Auto", Parsed));
}

TEST(TraceShard, RunPlanModesAgree) {
  // The plan scheduler itself: the same 1x1x1 plan (the halo_cli
  // run/baseline/hds shape) must produce identical results under every
  // replay mode and jobs count.
  auto RunWith = [&](int Jobs, ReplayMode Mode) {
    ExperimentSpec Spec;
    Spec.Benchmarks = {"health"};
    Spec.Kinds = {AllocatorKind::Halo};
    Spec.S = Scale::Test;
    Spec.Trials = 2;
    ExperimentPlan Plan = buildPlan({Spec});
    return runPlan(Plan, Jobs, Mode);
  };
  ResultSet Serial = RunWith(1, ReplayMode::Serial);
  for (int Jobs : {1, 4})
    for (ReplayMode Mode :
         {ReplayMode::Auto, ReplayMode::Serial, ReplayMode::Sharded}) {
      ResultSet Got = RunWith(Jobs, Mode);
      ASSERT_EQ(Serial.size(), Got.size());
      for (size_t C = 0; C < Serial.cells().size(); ++C) {
        ASSERT_EQ(Serial.cells()[C].Runs.size(), Got.cells()[C].Runs.size());
        for (size_t R = 0; R < Serial.cells()[C].Runs.size(); ++R)
          expectSameMetrics(Serial.cells()[C].Runs[R],
                            Got.cells()[C].Runs[R],
                            "jobs=" + std::to_string(Jobs) + " mode=" +
                                replayModeName(Mode) + " run " +
                                std::to_string(R));
      }
    }
}
