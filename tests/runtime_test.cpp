//===- tests/runtime_test.cpp - Runtime behaviour tests -----------------------===//

#include "mem/SizeClassAllocator.h"
#include "runtime/Runtime.h"

#include <gtest/gtest.h>

#include <vector>

using namespace halo;

namespace {

struct RuntimeTest : ::testing::Test {
  Program P;
  FunctionId Main, F, G;
  CallSiteId MainToF, FToG, FMalloc;
  SizeClassAllocator Alloc;

  RuntimeTest() {
    Main = P.addFunction("main");
    F = P.addFunction("f");
    G = P.addFunction("g");
    MainToF = P.addCallSite(Main, F, "main>f");
    FToG = P.addCallSite(F, G, "f>g");
    FMalloc = P.addMallocSite(F, "f>malloc");
  }
};

/// Observer that records the event stream as strings.
class RecordingObserver : public RuntimeObserver {
public:
  std::vector<std::string> Log;
  void onCall(CallSiteId S) override {
    Log.push_back("call:" + std::to_string(S));
  }
  void onReturn(CallSiteId S) override {
    Log.push_back("ret:" + std::to_string(S));
  }
  void onAlloc(uint64_t, uint64_t Size, CallSiteId) override {
    Log.push_back("alloc:" + std::to_string(Size));
  }
  void onFree(uint64_t) override { Log.push_back("free"); }
  void onAccess(uint64_t, uint64_t Size, bool IsStore) override {
    Log.push_back((IsStore ? "st:" : "ld:") + std::to_string(Size));
  }
};

} // namespace

TEST_F(RuntimeTest, ScopeEntersAndLeaves) {
  Runtime RT(P, Alloc);
  EXPECT_EQ(RT.callDepth(), 0u);
  {
    Runtime::Scope S(RT, MainToF);
    EXPECT_EQ(RT.callDepth(), 1u);
    EXPECT_EQ(RT.currentSite(), MainToF);
  }
  EXPECT_EQ(RT.callDepth(), 0u);
  EXPECT_EQ(RT.currentSite(), InvalidId);
}

TEST_F(RuntimeTest, ObserverSeesWholeEventStream) {
  Runtime RT(P, Alloc);
  RecordingObserver Obs;
  RT.addObserver(&Obs);
  {
    Runtime::Scope S(RT, MainToF);
    uint64_t A = RT.malloc(24, FMalloc);
    RT.store(A, 8);
    RT.load(A, 8);
    RT.free(A);
  }
  std::vector<std::string> Expected = {
      "call:" + std::to_string(MainToF), "alloc:24", "st:8", "ld:8", "free",
      "ret:" + std::to_string(MainToF)};
  EXPECT_EQ(Obs.Log, Expected);
}

TEST_F(RuntimeTest, InstrumentationSetsAndClearsBits) {
  Runtime RT(P, Alloc);
  InstrumentationPlan Plan(P, {MainToF, FToG});
  RT.setInstrumentation(&Plan);
  EXPECT_FALSE(RT.groupState().test(0));
  {
    Runtime::Scope S(RT, MainToF);
    EXPECT_TRUE(RT.groupState().test(0));
    EXPECT_FALSE(RT.groupState().test(1));
    {
      Runtime::Scope T(RT, FToG);
      EXPECT_TRUE(RT.groupState().test(1));
    }
    EXPECT_FALSE(RT.groupState().test(1));
  }
  EXPECT_FALSE(RT.groupState().test(0));
  // Two sites crossed, each set+unset once.
  EXPECT_EQ(RT.timing().instrumentationOps(), 4u);
}

TEST_F(RuntimeTest, UninstrumentedSitesCostNothing) {
  Runtime RT(P, Alloc);
  InstrumentationPlan Plan(P, {FToG});
  RT.setInstrumentation(&Plan);
  {
    Runtime::Scope S(RT, MainToF);
  }
  EXPECT_EQ(RT.timing().instrumentationOps(), 0u);
}

TEST_F(RuntimeTest, NaiveBitClearUnderRecursion) {
  // The paper's straight-line set/unset: the inner return clears the bit
  // even though an outer activation is still live.
  Runtime RT(P, Alloc);
  CallSiteId FToF = P.addCallSite(F, F, "f>f");
  InstrumentationPlan Plan(P, {FToF});
  RT.setInstrumentation(&Plan);
  RT.enter(FToF);
  RT.enter(FToF);
  EXPECT_TRUE(RT.groupState().test(0));
  RT.leave();
  EXPECT_FALSE(RT.groupState().test(0)); // Cleared by the inner return.
  RT.leave();
}

TEST_F(RuntimeTest, MallocRoutesThroughAllocator) {
  Runtime RT(P, Alloc);
  uint64_t A = RT.malloc(100, FMalloc);
  EXPECT_TRUE(Alloc.owns(A));
  RT.free(A);
  EXPECT_FALSE(Alloc.owns(A));
  EXPECT_EQ(RT.stats().Allocs, 1u);
  EXPECT_EQ(RT.stats().Frees, 1u);
}

TEST_F(RuntimeTest, FreeNullIsNoOp) {
  Runtime RT(P, Alloc);
  RT.free(0);
  EXPECT_EQ(RT.stats().Frees, 0u);
}

TEST_F(RuntimeTest, CallocZeroesSmallRequests) {
  Runtime RT(P, Alloc);
  RecordingObserver Obs;
  RT.addObserver(&Obs);
  RT.calloc(4, 8, FMalloc);
  ASSERT_EQ(Obs.Log.size(), 2u);
  EXPECT_EQ(Obs.Log[0], "alloc:32");
  EXPECT_EQ(Obs.Log[1], "st:32");
}

TEST_F(RuntimeTest, CallocPageScaleSkipsStores) {
  Runtime RT(P, Alloc);
  RecordingObserver Obs;
  RT.addObserver(&Obs);
  RT.calloc(1, 8192, FMalloc);
  ASSERT_EQ(Obs.Log.size(), 1u); // Fresh zero pages, no memset traffic.
}

TEST_F(RuntimeTest, ReallocCopiesAndFrees) {
  Runtime RT(P, Alloc);
  uint64_t A = RT.malloc(64, FMalloc);
  uint64_t B = RT.realloc(A, 128, FMalloc);
  EXPECT_NE(A, B);
  EXPECT_FALSE(Alloc.owns(A));
  EXPECT_TRUE(Alloc.owns(B));
  // 64 bytes copied in one 64B stride: one load + one store.
  EXPECT_EQ(RT.stats().Loads, 1u);
  EXPECT_EQ(RT.stats().Stores, 1u);
}

TEST_F(RuntimeTest, ReallocOfNullIsMalloc) {
  Runtime RT(P, Alloc);
  uint64_t A = RT.realloc(0, 64, FMalloc);
  EXPECT_TRUE(Alloc.owns(A));
  EXPECT_EQ(RT.stats().Loads, 0u);
}

TEST_F(RuntimeTest, MemoryHierarchyDrivenByAccesses) {
  Runtime RT(P, Alloc);
  MemoryHierarchy Mem;
  RT.setMemory(&Mem);
  uint64_t A = RT.malloc(64, FMalloc);
  RT.load(A, 8);
  EXPECT_EQ(Mem.counters().Accesses, 1u);
  EXPECT_GT(RT.timing().memoryCycles(), 0u);
}

TEST_F(RuntimeTest, SetAllocatorSwapsServing) {
  Runtime RT(P, Alloc);
  SizeClassAllocator Other(0x7700000000ull);
  RT.setAllocator(Other);
  uint64_t A = RT.malloc(32, FMalloc);
  EXPECT_TRUE(Other.owns(A));
  EXPECT_FALSE(Alloc.owns(A));
}

TEST_F(RuntimeTest, ComputeAccumulates) {
  Runtime RT(P, Alloc);
  RT.compute(123);
  EXPECT_EQ(RT.timing().computeCycles(), 123u);
}
