//===- tests/program_test.cpp - Program / state vector / plan tests ----------===//

#include "prog/GroupStateVector.h"
#include "prog/Instrumentation.h"
#include "prog/Program.h"

#include <gtest/gtest.h>

using namespace halo;

TEST(Program, BuiltinMallocIsTraceableExternal) {
  Program P;
  const FunctionInfo &M = P.function(P.mallocFunction());
  EXPECT_EQ(M.Name, "malloc");
  EXPECT_TRUE(M.IsExternal);
  EXPECT_TRUE(M.IsTraceable);
}

TEST(Program, AddFunctionAndCallSite) {
  Program P;
  FunctionId F = P.addFunction("foo");
  FunctionId G = P.addFunction("bar");
  CallSiteId S = P.addCallSite(F, G, "foo>bar");
  EXPECT_EQ(P.callSite(S).Caller, F);
  EXPECT_EQ(P.callSite(S).Callee, G);
  EXPECT_EQ(P.callSite(S).Label, "foo>bar");
  EXPECT_FALSE(P.function(F).IsExternal);
}

TEST(Program, MallocSitesIdentified) {
  Program P;
  FunctionId F = P.addFunction("foo");
  FunctionId G = P.addFunction("bar");
  CallSiteId M = P.addMallocSite(F, "foo>malloc");
  CallSiteId S = P.addCallSite(F, G, "foo>bar");
  EXPECT_TRUE(P.isMallocSite(M));
  EXPECT_FALSE(P.isMallocSite(S));
}

TEST(StateVector, SetUnsetTest) {
  GroupStateVector V(130);
  EXPECT_FALSE(V.test(0));
  V.set(0);
  V.set(129);
  EXPECT_TRUE(V.test(0));
  EXPECT_TRUE(V.test(129));
  EXPECT_FALSE(V.test(64));
  V.unset(129);
  EXPECT_FALSE(V.test(129));
}

TEST(StateVector, ContainsAllMasks) {
  GroupStateVector V(8);
  V.set(1);
  V.set(3);
  EXPECT_TRUE(V.containsAll({0b1010}));
  EXPECT_FALSE(V.containsAll({0b1110}));
  EXPECT_TRUE(V.containsAll({0b0000})); // Empty mask always matches.
}

TEST(StateVector, ShorterMaskAllowed) {
  GroupStateVector V(100);
  V.set(2);
  EXPECT_TRUE(V.containsAll({0b100}));
}

TEST(StateVector, ClearResetsBits) {
  GroupStateVector V(16);
  V.set(5);
  V.clear();
  EXPECT_FALSE(V.test(5));
}

TEST(InstrumentationPlan, AssignsBitsInOrder) {
  Program P;
  FunctionId F = P.addFunction("f");
  CallSiteId A = P.addMallocSite(F, "a");
  CallSiteId B = P.addMallocSite(F, "b");
  CallSiteId C = P.addMallocSite(F, "c");
  InstrumentationPlan Plan(P, {B, C});
  EXPECT_EQ(Plan.bitFor(B), 0);
  EXPECT_EQ(Plan.bitFor(C), 1);
  EXPECT_EQ(Plan.bitFor(A), -1);
  EXPECT_EQ(Plan.numBits(), 2u);
  EXPECT_EQ(Plan.numInstrumentedSites(), 2u);
}

TEST(InstrumentationPlan, DuplicateSitesShareBit) {
  Program P;
  FunctionId F = P.addFunction("f");
  CallSiteId A = P.addMallocSite(F, "a");
  InstrumentationPlan Plan(P, {A, A, A});
  EXPECT_EQ(Plan.numBits(), 1u);
  EXPECT_EQ(Plan.bitFor(A), 0);
}

TEST(InstrumentationPlan, EmptyPlanInstrumentsNothing) {
  Program P;
  FunctionId F = P.addFunction("f");
  CallSiteId A = P.addMallocSite(F, "a");
  InstrumentationPlan Plan;
  EXPECT_EQ(Plan.bitFor(A), -1);
  EXPECT_EQ(Plan.numBits(), 0u);
}
