//===- tests/sequitur_test.cpp - SEQUITUR grammar inference -------------------===//

#include "hds/Sequitur.h"

#include <gtest/gtest.h>

#include <map>

using namespace halo;

namespace {

/// Feeds a string (one terminal per char) and extracts the rules.
std::vector<Sequitur::ExtractedRule> infer(const std::string &Input) {
  Sequitur S;
  for (char C : Input)
    S.append(static_cast<uint32_t>(C));
  return S.extractRules();
}

/// Fully expands the start rule.
std::string expandAll(const std::vector<Sequitur::ExtractedRule> &Rules) {
  std::vector<uint32_t> Terminals =
      Sequitur::expandRule(Rules, 0, 1 << 20);
  std::string Out;
  for (uint32_t T : Terminals)
    Out.push_back(static_cast<char>(T));
  return Out;
}

/// Checks the digram-uniqueness invariant over the extracted grammar: no
/// adjacent symbol pair occurs twice, except for *overlapping* occurrences
/// (e.g. X X X), which SEQUITUR deliberately leaves alone.
void expectDigramUniqueness(const std::vector<Sequitur::ExtractedRule> &Rules) {
  std::map<std::pair<uint64_t, uint64_t>, std::pair<size_t, size_t>> Last;
  for (size_t RI = 0; RI < Rules.size(); ++RI) {
    const Sequitur::ExtractedRule &R = Rules[RI];
    for (size_t I = 0; I + 1 < R.Body.size(); ++I) {
      uint64_t A = (uint64_t(R.Body[I].IsRule) << 32) | R.Body[I].Value;
      uint64_t B =
          (uint64_t(R.Body[I + 1].IsRule) << 32) | R.Body[I + 1].Value;
      auto [It, New] = Last.emplace(std::make_pair(A, B),
                                    std::make_pair(RI, I));
      if (!New) {
        auto [PrevRule, PrevPos] = It->second;
        bool Overlapping = PrevRule == RI && I == PrevPos + 1;
        EXPECT_TRUE(Overlapping)
            << "repeated non-overlapping digram in rule " << RI;
        It->second = {RI, I};
      }
    }
  }
}

} // namespace

TEST(Sequitur, RoundTripsShortStrings) {
  for (const std::string In :
       {"a", "ab", "abab", "abcabc", "aaaa", "abcdbc", "mississippi"}) {
    auto Rules = infer(In);
    EXPECT_EQ(expandAll(Rules), In) << "input: " << In;
  }
}

TEST(Sequitur, AbabCreatesOneRule) {
  auto Rules = infer("abab");
  // Start rule = R1 R1, R1 = ab.
  ASSERT_EQ(Rules.size(), 2u);
  EXPECT_EQ(Rules[0].Body.size(), 2u);
  EXPECT_TRUE(Rules[0].Body[0].IsRule);
  EXPECT_EQ(Rules[1].Body.size(), 2u);
  EXPECT_FALSE(Rules[1].Body[0].IsRule);
}

TEST(Sequitur, RuleUtilityInlinesSingleUseRules) {
  // The classic example: abcdbcabcdbc creates nested rules, and every
  // surviving rule is used at least twice.
  auto Rules = infer("abcdbcabcdbc");
  EXPECT_EQ(expandAll(Rules), "abcdbcabcdbc");
  // Count rule references.
  std::map<uint32_t, int> Uses;
  for (const auto &R : Rules)
    for (const auto &B : R.Body)
      if (B.IsRule)
        ++Uses[B.Value];
  for (const auto &[Rule, Count] : Uses)
    EXPECT_GE(Count, 2) << "rule " << Rule << " used once";
}

TEST(Sequitur, DigramUniquenessHolds) {
  expectDigramUniqueness(infer("abcdbcabcdbcaaaabbbb"));
  expectDigramUniqueness(infer("xyxyxyxyxy"));
  expectDigramUniqueness(infer("aabbaabbaabb"));
}

TEST(Sequitur, FrequenciesPropagate) {
  // "ababab": S = R R R (or similar); R = ab occurs three times.
  auto Rules = infer("ababab");
  bool FoundAb = false;
  for (uint32_t R = 1; R < Rules.size(); ++R) {
    auto Expansion = Sequitur::expandRule(Rules, R, 10);
    if (Expansion == std::vector<uint32_t>{'a', 'b'}) {
      FoundAb = true;
      EXPECT_EQ(Rules[R].Frequency, 3u);
      EXPECT_EQ(Rules[R].ExpansionLength, 2u);
    }
  }
  EXPECT_TRUE(FoundAb);
}

TEST(Sequitur, NestedRuleFrequencies) {
  // "abcabcabcabc": rule(abc) appears 4 times, possibly nested under
  // rule(abcabc) appearing twice.
  auto Rules = infer("abcabcabcabc");
  for (uint32_t R = 1; R < Rules.size(); ++R) {
    auto Expansion = Sequitur::expandRule(Rules, R, 16);
    if (Expansion == std::vector<uint32_t>{'a', 'b', 'c'}) {
      EXPECT_EQ(Rules[R].Frequency, 4u);
    }
    if (Expansion.size() == 6) {
      EXPECT_EQ(Rules[R].Frequency, 2u);
    }
  }
}

TEST(Sequitur, ExpansionLengthSaturatesAtCap) {
  auto Rules = infer("abcabcabcabc");
  auto Capped = Sequitur::expandRule(Rules, 0, 5);
  EXPECT_EQ(Capped.size(), 5u);
  EXPECT_EQ(Capped, (std::vector<uint32_t>{'a', 'b', 'c', 'a', 'b'}));
}

TEST(Sequitur, StartRuleFrequencyIsOne) {
  auto Rules = infer("abcabc");
  EXPECT_EQ(Rules[0].Frequency, 1u);
  EXPECT_EQ(Rules[0].ExpansionLength, 6u);
}

TEST(Sequitur, LongRandomishInputRoundTrips) {
  std::string In;
  uint64_t X = 12345;
  for (int I = 0; I < 5000; ++I) {
    X = X * 6364136223846793005ull + 1442695040888963407ull;
    In.push_back('a' + (X >> 60) % 4);
  }
  auto Rules = infer(In);
  EXPECT_EQ(expandAll(Rules), In);
  expectDigramUniqueness(Rules);
  // Compression actually happened.
  EXPECT_LT(Rules[0].Body.size(), In.size());
}

TEST(Sequitur, RepetitiveInputCompressesHard) {
  std::string In;
  for (int I = 0; I < 256; ++I)
    In += "abcd";
  auto Rules = infer(In);
  EXPECT_EQ(expandAll(Rules), In);
  // The grammar for (abcd)^256 is logarithmic in the input.
  EXPECT_LE(Rules.size(), 12u);
}

TEST(Sequitur, NumRulesMatchesExtraction) {
  Sequitur S;
  for (char C : std::string("abcdbcabcdbc"))
    S.append(C);
  EXPECT_EQ(S.numRules(), S.extractRules().size());
}
