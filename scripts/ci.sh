#!/usr/bin/env bash
# One-command CI for the HALO reproduction: the tier-1 verify (Release
# build + full ctest, including the golden_run_json byte check) followed
# by the ASan+UBSan build (-DHALO_SANITIZE=ON) running the same suite.
# Each build also smoke-tests the artifact store end to end through
# halo_cli against a per-run temp --store-dir: cold run populates, warm
# run must emit byte-identical JSON, verify must pass. And each build
# smoke-tests the serve daemon: two concurrent clients against one
# daemon on a temp socket, each byte-identical to a local run, then a
# clean client-initiated shutdown (exit 0, socket file gone).
#
# Usage: scripts/ci.sh [build-dir [sanitize-build-dir]]
#   build dirs default to build/ and build-asan/ at the repo root;
#   CTEST_PARALLEL overrides the ctest -j level.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
SAN_BUILD="${2:-$ROOT/build-asan}"
JOBS="${CTEST_PARALLEL:-$(nproc)}"

# Cold run, warm run, byte-compare, verify -- with a store directory that
# lives only for this invocation, so runs never poison each other. The
# same trace then round-trips through --trace-mode mapped (cold: record
# streamed to disk; warm: replayed mmap'd off the store entry), and both
# runs must emit JSON byte-identical to the in-RAM --trace-mode memory
# oracle -- the "mapped = in-RAM" contract, end to end through the CLI.
store_smoke() {
  local build="$1"
  local store out_cold out_warm out_mem out_map_cold out_map_warm
  store="$(mktemp -d)"
  out_cold="$(mktemp)"
  out_warm="$(mktemp)"
  out_mem="$(mktemp)"
  out_map_cold="$(mktemp)"
  out_map_warm="$(mktemp)"
  trap 'rm -rf "$store" "$out_cold" "$out_warm" "$out_mem" "$out_map_cold" "$out_map_warm"' RETURN
  "$build/examples/halo_cli" run health --trials 2 \
      --store-dir "$store" --out "$out_cold"
  "$build/examples/halo_cli" run health --trials 2 \
      --store-dir "$store" --out "$out_warm"
  cmp "$out_cold" "$out_warm"
  "$build/examples/halo_cli" store verify --store-dir "$store"
  "$build/examples/halo_cli" store gc --store-dir "$store"

  local map_store
  map_store="$(mktemp -d)"
  trap 'rm -rf "$store" "$out_cold" "$out_warm" "$out_mem" "$out_map_cold" "$out_map_warm" "$map_store"' RETURN
  "$build/examples/halo_cli" run health --trials 2 \
      --trace-mode mapped --store-dir "$map_store" --out "$out_map_cold"
  "$build/examples/halo_cli" run health --trials 2 \
      --trace-mode mapped --store-dir "$map_store" --out "$out_map_warm"
  "$build/examples/halo_cli" run health --trials 2 \
      --trace-mode memory --store-dir "$map_store" --out "$out_mem"
  cmp "$out_mem" "$out_map_cold"
  cmp "$out_mem" "$out_map_warm"
  "$build/examples/halo_cli" store verify --store-dir "$map_store"
}

# The serve daemon end to end through halo_cli: a daemon on a per-run
# temp socket serves two clients concurrently, each client's streamed
# JSON must be byte-identical to a local `experiments` run of the same
# spec ("served = local"), and a client-initiated shutdown must leave
# exit 0 and no socket file behind.
serve_smoke() {
  local build="$1"
  local dir daemon_pid sock
  dir="$(mktemp -d)"
  daemon_pid=""
  # shellcheck disable=SC2064
  trap "if [[ -n \"\${daemon_pid:-}\" ]]; then kill \"\$daemon_pid\" 2>/dev/null || true; fi; rm -rf \"$dir\"" RETURN
  sock="$dir/halo.sock"

  "$build/examples/halo_cli" serve --socket "$sock" --jobs 2 \
      --store-dir "$dir/store" &
  daemon_pid=$!
  for _ in $(seq 1 100); do
    [[ -S "$sock" ]] && break
    sleep 0.1
  done
  [[ -S "$sock" ]]

  # Local oracles for both client specs.
  "$build/examples/halo_cli" experiments health --kinds jemalloc,halo \
      --scale test --trials 2 --out "$dir/local_a.json"
  "$build/examples/halo_cli" experiments ft --kinds jemalloc,hds \
      --scale test --trials 2 --out "$dir/local_b.json"

  # Two clients racing on the one daemon.
  "$build/examples/halo_cli" client run health --socket "$sock" \
      --kinds jemalloc,halo --scale test --trials 2 \
      --out "$dir/served_a.json" &
  local client_a=$!
  "$build/examples/halo_cli" client run ft --socket "$sock" \
      --kinds jemalloc,hds --scale test --trials 2 \
      --out "$dir/served_b.json" &
  local client_b=$!
  wait "$client_a"
  wait "$client_b"
  cmp "$dir/local_a.json" "$dir/served_a.json"
  cmp "$dir/local_b.json" "$dir/served_b.json"

  "$build/examples/halo_cli" client shutdown --socket "$sock"
  wait "$daemon_pid"
  daemon_pid=""
  [[ ! -e "$sock" ]]
}

echo "== tier-1: Release build + ctest ($BUILD) =="
cmake -B "$BUILD" -S "$ROOT"
cmake --build "$BUILD" -j
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

echo "== tier-1: store warm/cold smoke =="
store_smoke "$BUILD"

echo "== tier-1: serve daemon smoke =="
serve_smoke "$BUILD"

echo "== sanitized: ASan+UBSan build + ctest ($SAN_BUILD) =="
cmake -B "$SAN_BUILD" -S "$ROOT" -DHALO_SANITIZE=ON
cmake --build "$SAN_BUILD" -j
# Twice: the parallel-equivalence suites pin their "hardware" jobs count
# to HALO_TEST_JOBS, so both replay/grouping axis choices (serial outer
# vs sharded inner) soak under the sanitizers.
HALO_TEST_JOBS=1 ctest --test-dir "$SAN_BUILD" --output-on-failure -j "$JOBS"
HALO_TEST_JOBS="$(nproc)" ctest --test-dir "$SAN_BUILD" --output-on-failure -j "$JOBS"

echo "== sanitized: store warm/cold smoke =="
store_smoke "$SAN_BUILD"

echo "== sanitized: serve daemon smoke =="
serve_smoke "$SAN_BUILD"

echo "== ci: all suites passed =="
