#!/usr/bin/env bash
# One-command CI for the HALO reproduction: the tier-1 verify (Release
# build + full ctest, including the golden_run_json byte check) followed
# by the ASan+UBSan build (-DHALO_SANITIZE=ON) running the same suite.
#
# Usage: scripts/ci.sh [build-dir [sanitize-build-dir]]
#   build dirs default to build/ and build-asan/ at the repo root;
#   CTEST_PARALLEL overrides the ctest -j level.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
SAN_BUILD="${2:-$ROOT/build-asan}"
JOBS="${CTEST_PARALLEL:-$(nproc)}"

echo "== tier-1: Release build + ctest ($BUILD) =="
cmake -B "$BUILD" -S "$ROOT"
cmake --build "$BUILD" -j
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

echo "== sanitized: ASan+UBSan build + ctest ($SAN_BUILD) =="
cmake -B "$SAN_BUILD" -S "$ROOT" -DHALO_SANITIZE=ON
cmake --build "$SAN_BUILD" -j
ctest --test-dir "$SAN_BUILD" --output-on-failure -j "$JOBS"

echo "== ci: all suites passed =="
